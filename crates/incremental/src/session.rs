//! The incremental cleansing [`Session`]: delta-driven detection over
//! persistent per-rule indexes, violation retraction, and a repair loop
//! that mirrors the batch `cleanse_loop` exactly.
//!
//! # Oracle equivalence
//!
//! The session maintains one invariant: **after every index update, the
//! violation store equals a full `Executor::detect` over the current
//! table, as a multiset**. The argument, per iterate strategy:
//!
//! * block membership order equals global table order (the engine's
//!   `group_by_key` concatenates map-side buckets in partition order),
//!   so orienting unordered candidate pairs by a persistent per-tuple
//!   sequence number reproduces the batch enumeration byte for byte;
//! * when a tuple changes, every violation whose generating unit
//!   involved it is retracted and exactly the units that involve its
//!   new version (`delta×resident ∪ delta×delta`, within the dirtied
//!   blocks) are re-detected — units among untouched residents are
//!   unchanged by construction;
//! * inequality rules probe the persistent [`OcIndex`] from both sides,
//!   which yields precisely the delta-involving subset of the batch
//!   OCJoin's ordered pairs.
//!
//! The repair phase then replays the batch loop: full-store repair per
//! round with a fresh per-cell change counter, the same frozen/no-op
//! filters, and the changed cells of each round fed back through the
//! incremental detection path. The one *scoped* shortcut — skipping
//! repair entirely when a batch adds and retracts nothing and the
//! previous loop ended stably (every surviving fix filtered as a no-op)
//! — is sound because repair input depends only on the stored
//! violations, which are untouched, so the batch loop would break on an
//! empty applicable set in its first round too.

use crate::delta::{apply_batch_to_table, DeltaBatch, DeltaOp};
use crate::wal::{
    self, DurabilityOptions, ProvState, RecoverStats, SessionState, StoredState, Wal, WindowState,
};
use crate::window::WindowSpec;
use bigdansing_common::metrics::Metrics;
use bigdansing_common::{Cell, Error, LshParams, Result, Table, Tuple, TupleId, Value};
use bigdansing_dataflow::bulkhead::IsolationOptions;
use bigdansing_dataflow::{Dio, Engine, PDataset};
use bigdansing_ocjoin::{try_ocjoin, OcIndex, OcJoinConfig};
use bigdansing_plan::physical::choose_strategy;
use bigdansing_plan::{Executor, IterateStrategy};
use bigdansing_repair::blackbox::RepairOptions;
use bigdansing_repair::cc::UnionFind;
use bigdansing_repair::{run_repair, Detected, RepairStrategy};
use bigdansing_rules::{BlockKey, DetectUnit, Fix, Rule, RuleExt, Violation};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Options governing a [`Session`]'s repair loop — the same knobs as the
/// batch cleanse loop, so a session and a from-scratch run are
/// comparable.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Maximum detect ⇄ repair iterations per applied batch.
    pub max_iterations: usize,
    /// Per-cell freeze threshold (reset for every batch, like a fresh
    /// batch run).
    pub max_changes_per_cell: usize,
    /// Repair strategy.
    pub strategy: RepairStrategy,
    /// Options forwarded to the parallel black-box driver.
    pub repair_options: RepairOptions,
    /// Rule-isolation mode. In partial mode a rule whose delta
    /// detection fails is quarantined — its indexes are dropped, its
    /// stored violations retracted, and later applies skip it — instead
    /// of poisoning the whole session. Quarantine is in-memory only:
    /// [`Session::recover`] gives every rule a fresh trial.
    pub isolation: IsolationOptions,
    /// Violation window (Bleach-style). When set, every arriving record
    /// gets a logical event time and tuples whose last containing
    /// window closes behind the watermark are retired through the
    /// delete path after each apply — their violations retracted via
    /// the provenance indexes. `None` keeps the unbounded behaviour.
    pub window: Option<WindowSpec>,
    /// Session-level override of the MinHash/LSH banding geometry,
    /// mirroring the batch loop's option so an incremental session and
    /// a from-scratch cleanse of the same job stay comparable. Applies
    /// to every similarity rule; ignored by rules without LSH blocking.
    pub lsh: Option<LshParams>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            max_iterations: 10,
            max_changes_per_cell: 3,
            strategy: RepairStrategy::default(),
            repair_options: RepairOptions::default(),
            isolation: IsolationOptions::default(),
            window: None,
            lsh: None,
        }
    }
}

/// What one [`Session::apply`] did.
#[derive(Debug, Clone, Default)]
pub struct DeltaReport {
    /// Inserts in the batch.
    pub inserted: usize,
    /// Updates in the batch.
    pub updated: usize,
    /// Deletes in the batch.
    pub deleted: usize,
    /// Distinct tuples that participated in re-detected units (delta
    /// tuples, their block partners, and repair-touched tuples).
    pub tuples_reprocessed: u64,
    /// Distinct `(rule, block key)` pairs dirtied by the batch.
    pub blocks_dirty: u64,
    /// Violations newly added to the store.
    pub violations_added: u64,
    /// Violations retracted because a contributing row was deleted,
    /// updated, or re-blocked.
    pub violations_retracted: u64,
    /// Connected components of the violation graph touched by added or
    /// retracted violations (the scope of re-repair).
    pub components_rerepaired: u64,
    /// Repair iterations executed.
    pub iterations: usize,
    /// Violations seen across all repair iterations.
    pub total_violations: usize,
    /// Distinct cell updates applied by repair.
    pub cells_changed: usize,
    /// Cells frozen by the termination rule.
    pub frozen_cells: usize,
    /// Σ distance(old, new) over applied updates.
    pub repair_cost: f64,
    /// Violations still live after the apply.
    pub violations_remaining: usize,
    /// True when the table ended violation-free.
    pub converged: bool,
    /// True when the scoped-re-repair shortcut skipped the repair loop
    /// (no violations added or retracted, previous loop ended stably).
    pub repair_skipped: bool,
    /// Rules quarantined so far (this apply and earlier ones): in
    /// partial isolation mode, a rule whose detection faults is
    /// excluded for the rest of the session instead of poisoning it.
    pub rules_quarantined: u64,
    /// Tuples retired by the violation window because the watermark
    /// passed their last containing window (windowed sessions only).
    pub tuples_expired: usize,
}

/// How a rule's candidate units are generated incrementally — the
/// session-side mirror of [`IterateStrategy`].
#[derive(Debug, Clone)]
enum Kind {
    /// One unit per scoped tuple.
    Single,
    /// Pairs within blocks. `keyed`: use the rule's Block operator
    /// (otherwise everything shares one global block). `ordered`: emit
    /// both orientations. `distinct_ids`: skip same-id pairs (the
    /// CrossProduct diagonal filter).
    Blocked {
        keyed: bool,
        ordered: bool,
        distinct_ids: bool,
    },
    /// Whole blocks as units.
    List,
    /// Inequality joins through the persistent [`OcIndex`].
    Ordered,
    /// MinHash/LSH banding for similarity rules: the block index holds
    /// every tuple under each of its `(band, bucket hash)` keys, delta
    /// tuples probe all their band buckets, and a cross-band seen-set
    /// keeps each candidate pair single-shot — mirroring the batch
    /// executor's first-shared-band dedup.
    Lsh { bands: usize, rows_per_band: usize },
}

fn kind_of(strategy: &IterateStrategy) -> Kind {
    match strategy {
        IterateStrategy::SingleUnits => Kind::Single,
        IterateStrategy::BlockPairs { ordered } => Kind::Blocked {
            keyed: true,
            ordered: *ordered,
            distinct_ids: false,
        },
        IterateStrategy::BlockList => Kind::List,
        IterateStrategy::UCrossProduct => Kind::Blocked {
            keyed: false,
            ordered: false,
            distinct_ids: false,
        },
        IterateStrategy::CrossProduct => Kind::Blocked {
            keyed: false,
            ordered: true,
            distinct_ids: true,
        },
        IterateStrategy::OcJoin(_) => Kind::Ordered,
        IterateStrategy::LshBlocks {
            bands,
            rows_per_band,
        } => Kind::Lsh {
            bands: *bands,
            rows_per_band: *rows_per_band,
        },
    }
}

/// [`kind_of`] with the session-level LSH geometry override applied —
/// the incremental mirror of the batch loop rewriting its pipeline
/// strategy from [`SessionOptions::lsh`].
fn kind_for(rule: &dyn Rule, lsh: Option<LshParams>) -> Kind {
    let mut strategy = choose_strategy(rule);
    if let (
        Some(p),
        IterateStrategy::LshBlocks {
            bands,
            rows_per_band,
        },
    ) = (lsh, &mut strategy)
    {
        *bands = p.bands;
        *rows_per_band = p.rows_per_band;
    }
    kind_of(&strategy)
}

/// One scoped tuple resident in a block, with its enumeration position:
/// `seq` is the owning tuple's table-order sequence number, `rep` the
/// index among that tuple's Scope outputs.
#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    rep: u32,
    tuple: Tuple,
}

impl Entry {
    fn pos(&self) -> (u64, u32) {
        (self.seq, self.rep)
    }
}

/// Per-rule persistent state: the scoped tuples by source id and the
/// rule's candidate-generation index.
struct RuleState {
    rule: Arc<dyn Rule>,
    kind: Kind,
    /// Scope outputs per source tuple (`rep` order), keyed by the seq
    /// the entries were indexed under. Removal must use this recorded
    /// seq, not the live one: a delete-then-reinsert batch reassigns
    /// `Session::seqs[id]` before the indexes are cleaned up.
    scoped: HashMap<TupleId, (u64, Vec<(u32, Tuple)>)>,
    /// Block index (blocking key → members in table order). Used by
    /// `Blocked` (key `[]` when unkeyed) and `List`.
    blocks: HashMap<BlockKey, Vec<Entry>>,
    /// The inequality index, built lazily on first ingest.
    oc: Option<OcIndex>,
    /// The fault that quarantined this rule (partial isolation mode):
    /// its indexes are dropped and redetection skips it for the rest of
    /// the session. `None` while healthy.
    quarantined: Option<String>,
}

/// Where a stored violation came from: the tuple ids of the unit that
/// produced it, or — for list rules — the whole block.
#[derive(Debug, Clone)]
enum Provenance {
    Tuples(Vec<TupleId>),
    Block(BlockKey),
}

struct Stored {
    rule: usize,
    violation: Violation,
    fixes: Vec<Fix>,
    prov: Provenance,
}

/// The violation store: live violations with provenance indexes for
/// retraction by tuple and by block.
#[derive(Default)]
struct Store {
    items: BTreeMap<u64, Stored>,
    next: u64,
    by_tuple: HashMap<TupleId, BTreeSet<u64>>,
    by_block: HashMap<(usize, BlockKey), BTreeSet<u64>>,
}

impl Store {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn add(&mut self, rule: usize, violation: Violation, fixes: Vec<Fix>, prov: Provenance) {
        let id = self.next;
        self.next += 1;
        match &prov {
            Provenance::Tuples(ids) => {
                for t in ids {
                    self.by_tuple.entry(*t).or_default().insert(id);
                }
            }
            Provenance::Block(key) => {
                self.by_block
                    .entry((rule, key.clone()))
                    .or_default()
                    .insert(id);
            }
        }
        self.items.insert(
            id,
            Stored {
                rule,
                violation,
                fixes,
                prov,
            },
        );
    }

    /// Re-insert a stored violation under a known id (snapshot
    /// recovery), maintaining the provenance indexes and keeping
    /// `next` ahead of every live id.
    fn insert_raw(&mut self, id: u64, stored: Stored) {
        match &stored.prov {
            Provenance::Tuples(ids) => {
                for t in ids {
                    self.by_tuple.entry(*t).or_default().insert(id);
                }
            }
            Provenance::Block(key) => {
                self.by_block
                    .entry((stored.rule, key.clone()))
                    .or_default()
                    .insert(id);
            }
        }
        self.items.insert(id, stored);
        self.next = self.next.max(id + 1);
    }

    fn remove(&mut self, id: u64) -> Option<Stored> {
        let stored = self.items.remove(&id)?;
        match &stored.prov {
            Provenance::Tuples(ids) => {
                for t in ids {
                    if let Some(set) = self.by_tuple.get_mut(t) {
                        set.remove(&id);
                        if set.is_empty() {
                            self.by_tuple.remove(t);
                        }
                    }
                }
            }
            Provenance::Block(key) => {
                let k = (stored.rule, key.clone());
                if let Some(set) = self.by_block.get_mut(&k) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.by_block.remove(&k);
                    }
                }
            }
        }
        Some(stored)
    }

    /// Retract every violation whose generating unit involved a dirty
    /// tuple. Returns the removed items.
    fn retract_tuples(&mut self, dirty: &BTreeSet<TupleId>) -> Vec<Stored> {
        let mut ids: BTreeSet<u64> = BTreeSet::new();
        for t in dirty {
            if let Some(set) = self.by_tuple.get(t) {
                ids.extend(set.iter().copied());
            }
        }
        ids.into_iter().filter_map(|id| self.remove(id)).collect()
    }

    /// Retract every violation detected by rule `rule` (quarantine:
    /// a faulted rule's stored violations must not feed repair).
    fn retract_rule(&mut self, rule: usize) -> Vec<Stored> {
        let ids: Vec<u64> = self
            .items
            .iter()
            .filter(|(_, s)| s.rule == rule)
            .map(|(id, _)| *id)
            .collect();
        ids.into_iter().filter_map(|id| self.remove(id)).collect()
    }

    /// Retract every violation attributed to `(rule, key)`.
    fn retract_block(&mut self, rule: usize, key: &BlockKey) -> Vec<Stored> {
        let ids: Vec<u64> = self
            .by_block
            .get(&(rule, key.clone()))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        ids.into_iter().filter_map(|id| self.remove(id)).collect()
    }

    /// The `(violation, fixes)` snapshot handed to repair, in insertion
    /// order (repair strategies used here are order-independent).
    fn detected(&self) -> Vec<Detected> {
        self.items
            .values()
            .map(|s| (s.violation.clone(), s.fixes.clone()))
            .collect()
    }
}

/// Per-apply bookkeeping feeding the new metrics.
#[derive(Default)]
struct ApplyStats {
    reprocessed: BTreeSet<TupleId>,
    blocks: BTreeSet<(usize, BlockKey)>,
    added: u64,
    retracted: u64,
    /// Tuple ids of violations added or retracted (component markers).
    markers: BTreeSet<TupleId>,
}

impl ApplyStats {
    fn mark_stored(&mut self, s: &Stored) {
        self.markers.extend(s.violation.tuple_ids());
        if let Provenance::Tuples(ids) = &s.prov {
            self.markers.extend(ids.iter().copied());
        }
    }
}

/// The durability attachment of a session: the open WAL, the snapshot
/// cadence, and the watermarks tying both to the apply sequence.
struct Durable {
    dir: std::path::PathBuf,
    wal: Wal,
    snapshot_every: u64,
    /// Batch sequence covered by the latest on-disk snapshot.
    last_snapshot_seq: u64,
    /// Sequence of the last *successfully applied* batch. A batch that
    /// reached the WAL but failed mid-apply is excluded — recovery
    /// replays it.
    last_seq: u64,
    dio: Dio,
}

/// Violation-window state: the logical clock handing out event times
/// and the event time of every live tuple. Event times are arrival
/// ordinals — assigned in batch op order — so WAL replay reproduces
/// the exact same expirations a live run performed.
struct Win {
    spec: WindowSpec,
    /// Next event time to assign; the watermark is `clock - 1`.
    clock: u64,
    times: HashMap<TupleId, u64>,
}

/// A long-lived incremental cleansing session over one base table.
pub struct Session {
    executor: Executor,
    rules: Vec<Arc<dyn Rule>>,
    options: SessionOptions,
    table: Table,
    /// Table-order sequence number per live tuple: base tuples keep
    /// their position, inserts get fresh increasing numbers (they append
    /// at the end), updates keep theirs, deletes drop theirs. Relative
    /// order always matches the materialized table.
    seqs: HashMap<TupleId, u64>,
    /// Current index of each live tuple in [`Session::table`] — lets
    /// delta-free-of-delete batches and repair rounds mutate the table
    /// in place instead of rebuilding its O(n) tuple vector. Rebuilt
    /// after deletes (positions shift).
    pos: HashMap<TupleId, usize>,
    next_seq: u64,
    states: Vec<RuleState>,
    store: Store,
    /// True when the last repair loop ended stably: violation-free, or
    /// with every surviving fix filtered as a no-op (never by the freeze
    /// counter or the iteration cap). Gates the skip-repair shortcut.
    stable: bool,
    /// True when an earlier [`Session::apply`] failed *after* the table
    /// was materialized (cancellation, deadline, memory ceiling, or a
    /// stage failure mid-redetect/repair): the indexes and violation
    /// store no longer match the table, so further applies are refused.
    poisoned: bool,
    applies: u64,
    /// Durability state when the session was opened with
    /// [`Session::open_durable`] or [`Session::recover`].
    durable: Option<Durable>,
    /// Window state when [`SessionOptions::window`] was set.
    win: Option<Win>,
}

impl Session {
    /// Open a session over `table`: builds the per-rule indexes and the
    /// initial violation store (a full detect's worth of violations,
    /// with provenance). The base table is *not* repaired — the first
    /// [`Session::apply`] cleanses pre-existing violations together with
    /// the batch's.
    pub fn new(
        executor: Executor,
        rules: Vec<Arc<dyn Rule>>,
        table: &Table,
        options: SessionOptions,
    ) -> Result<Session> {
        if rules.is_empty() {
            return Err(Error::Repair("no rules registered".into()));
        }
        let mut seqs = HashMap::with_capacity(table.len());
        let mut pos = HashMap::with_capacity(table.len());
        for (i, t) in table.tuples().iter().enumerate() {
            if seqs.insert(t.id(), i as u64).is_some() {
                return Err(Error::Repair(format!(
                    "duplicate tuple id {} in base table",
                    t.id()
                )));
            }
            pos.insert(t.id(), i);
        }
        let states = rules
            .iter()
            .map(|r| RuleState {
                rule: Arc::clone(r),
                kind: kind_for(r.as_ref(), options.lsh),
                scoped: HashMap::new(),
                blocks: HashMap::new(),
                oc: None,
                quarantined: None,
            })
            .collect();
        // Base rows get event times in table order, as if they streamed
        // in one at a time before the session opened.
        let win = options.window.map(|spec| Win {
            spec,
            clock: table.len() as u64,
            times: table
                .tuples()
                .iter()
                .enumerate()
                .map(|(i, t)| (t.id(), i as u64))
                .collect(),
        });
        let mut session = Session {
            executor,
            rules,
            options,
            table: table.clone(),
            next_seq: table.len() as u64,
            seqs,
            pos,
            states,
            store: Store::default(),
            stable: false,
            poisoned: false,
            applies: 0,
            durable: None,
            win,
        };
        let dirty: BTreeSet<TupleId> = table.tuples().iter().map(Tuple::id).collect();
        let fresh: HashMap<TupleId, Tuple> =
            table.tuples().iter().map(|t| (t.id(), t.clone())).collect();
        let mut stats = ApplyStats::default();
        session.redetect(&dirty, &fresh, &mut stats)?;
        // A base table longer than the window already has closed
        // windows behind its watermark: retire them now so the session
        // starts with only live-window rows.
        let mut expired_dirty = BTreeSet::new();
        if session.expire_past_watermark(&mut expired_dirty)? > 0 {
            let fresh = session.snapshot_tuples(&expired_dirty);
            session.redetect(&expired_dirty, &fresh, &mut stats)?;
        }
        Ok(session)
    }

    /// Open a **durable** session: like [`Session::new`], but every
    /// applied batch is WAL-logged before mutation and the full state
    /// is snapshotted atomically every `durability.snapshot_every`
    /// batches (plus a baseline snapshot now, so the directory is
    /// recoverable from the start). Refuses a directory that already
    /// holds a snapshot — recover it with [`Session::recover`] or
    /// clear it explicitly.
    pub fn open_durable(
        executor: Executor,
        rules: Vec<Arc<dyn Rule>>,
        table: &Table,
        options: SessionOptions,
        durability: DurabilityOptions,
    ) -> Result<Session> {
        if wal::snapshot_path(&durability.dir).exists() {
            return Err(Error::Io(format!(
                "{}: already a durable session directory; use Session::recover \
                 (or remove it) instead of opening over it",
                durability.dir.display()
            )));
        }
        let mut session = Session::new(executor, rules, table, options)?;
        wal::sweep_dir(&durability.dir);
        let w = Wal::create(&durability.dir)?;
        let dio = Dio::from_engine(session.executor.engine());
        session.durable = Some(Durable {
            dir: durability.dir,
            wal: w,
            snapshot_every: durability.snapshot_every,
            last_snapshot_seq: 0,
            last_seq: 0,
            dio,
        });
        session.snapshot()?;
        Ok(session)
    }

    /// Rebuild a session from a durable directory: load the latest
    /// snapshot, verify it was produced by the same rule set, rebuild
    /// the per-rule indexes deterministically, then replay the WAL
    /// records past the snapshot watermark (truncating any torn tail
    /// left by a crash mid-append). A batch that was WAL-logged but
    /// whose apply never finished — including one that *poisoned* the
    /// previous session — is applied now. If anything was replayed, a
    /// fresh snapshot is written so the next recovery starts hot.
    pub fn recover(
        executor: Executor,
        rules: Vec<Arc<dyn Rule>>,
        options: SessionOptions,
        durability: DurabilityOptions,
    ) -> Result<(Session, RecoverStats)> {
        wal::sweep_dir(&durability.dir);
        let state = wal::read_snapshot(&durability.dir)?.ok_or_else(|| {
            Error::Io(format!(
                "{}: no snapshot to recover from",
                durability.dir.display()
            ))
        })?;
        let names: Vec<String> = rules.iter().map(|r| r.name().to_string()).collect();
        if names != state.rule_names {
            return Err(Error::Repair(format!(
                "recover: rule set mismatch — snapshot was written with [{}], \
                 session opened with [{}]",
                state.rule_names.join(", "),
                names.join(", ")
            )));
        }
        let mut session = Session::from_state(executor, rules, options, &state)?;
        let (w, records) = Wal::open(&durability.dir)?;
        let dio = Dio::from_engine(session.executor.engine());
        session.durable = Some(Durable {
            dir: durability.dir,
            wal: w,
            snapshot_every: durability.snapshot_every,
            last_snapshot_seq: state.last_seq,
            last_seq: state.last_seq,
            dio,
        });
        let mut stats = RecoverStats {
            snapshot_seq: state.last_seq,
            replayed: 0,
            last_seq: state.last_seq,
        };
        for (seq, batch) in records {
            if seq <= state.last_seq {
                continue;
            }
            session.apply_impl(batch, false)?;
            let d = session.durable.as_mut().expect("durable was just attached");
            d.last_seq = seq;
            stats.last_seq = seq;
            stats.replayed += 1;
        }
        if stats.replayed > 0 {
            session.snapshot()?;
        }
        Ok((session, stats))
    }

    /// Rebuild a session skeleton from snapshot state: table, sequence
    /// numbers, violation store (ids preserved), and freshly re-scoped
    /// per-rule indexes — no detection runs, the store is trusted.
    fn from_state(
        executor: Executor,
        rules: Vec<Arc<dyn Rule>>,
        options: SessionOptions,
        state: &SessionState,
    ) -> Result<Session> {
        if rules.is_empty() {
            return Err(Error::Repair("no rules registered".into()));
        }
        let table = state.table();
        let mut seqs = HashMap::with_capacity(table.len());
        let mut pos = HashMap::with_capacity(table.len());
        for (i, t) in table.tuples().iter().enumerate() {
            if seqs.insert(t.id(), state.seqs[i]).is_some() {
                return Err(Error::Corrupt(format!(
                    "snapshot: duplicate tuple id {}",
                    t.id()
                )));
            }
            pos.insert(t.id(), i);
        }
        let states = rules
            .iter()
            .map(|r| RuleState {
                rule: Arc::clone(r),
                kind: kind_for(r.as_ref(), options.lsh),
                scoped: HashMap::new(),
                blocks: HashMap::new(),
                oc: None,
                quarantined: None,
            })
            .collect();
        let mut store = Store::default();
        for item in &state.items {
            let rule = item.rule as usize;
            if rule >= rules.len() {
                return Err(Error::Corrupt(format!(
                    "snapshot: violation references rule {rule} of {}",
                    rules.len()
                )));
            }
            let prov = match &item.prov {
                ProvState::Tuples(ids) => Provenance::Tuples(ids.clone()),
                ProvState::Block(vals) => {
                    let mut key = BlockKey::new();
                    for v in vals {
                        key.push(v.clone());
                    }
                    Provenance::Block(key)
                }
            };
            store.insert_raw(
                item.id,
                Stored {
                    rule,
                    violation: item.violation.clone(),
                    fixes: item.fixes.clone(),
                    prov,
                },
            );
        }
        store.next = store.next.max(state.store_next);
        let win = match (&options.window, &state.window) {
            (None, None) => None,
            (Some(spec), Some(ws)) if spec.size == ws.size && spec.slide == ws.slide => Some(Win {
                spec: *spec,
                clock: ws.clock,
                times: table
                    .tuples()
                    .iter()
                    .zip(&ws.times)
                    .map(|(t, ts)| (t.id(), *ts))
                    .collect(),
            }),
            (opt, snap) => {
                let show_opt = opt.map(|w| w.to_string()).unwrap_or_else(|| "none".into());
                let show_snap = snap
                    .as_ref()
                    .map(|w| format!("{}:{}", w.size, w.slide))
                    .unwrap_or_else(|| "none".into());
                return Err(Error::Repair(format!(
                    "recover: window mismatch — snapshot has {show_snap}, \
                     session opened with {show_opt}"
                )));
            }
        };
        let mut session = Session {
            executor,
            rules,
            options,
            table,
            seqs,
            pos,
            next_seq: state.next_seq,
            states,
            store,
            stable: state.stable,
            poisoned: false,
            applies: state.applies,
            durable: None,
            win,
        };
        session.rebuild_indexes();
        Ok(session)
    }

    /// Re-scope every live tuple into the per-rule indexes, in table
    /// order — the same entries incremental maintenance would have
    /// accumulated, rebuilt in one pass.
    fn rebuild_indexes(&mut self) {
        let engine = self.executor.engine().clone();
        for state in &mut self.states {
            let kind = state.kind.clone();
            let mut entries: Vec<Entry> = Vec::new();
            for t in self.table.tuples() {
                let seq = *self.seqs.get(&t.id()).expect("live tuple has a seq");
                let reps = state.rule.scope(t);
                state.scoped.insert(
                    t.id(),
                    (
                        seq,
                        reps.iter()
                            .cloned()
                            .enumerate()
                            .map(|(i, s)| (i as u32, s))
                            .collect(),
                    ),
                );
                for (i, s) in reps.into_iter().enumerate() {
                    entries.push(Entry {
                        seq,
                        rep: i as u32,
                        tuple: s,
                    });
                }
            }
            entries.sort_by_key(Entry::pos);
            match kind {
                Kind::Single => {}
                Kind::Blocked { keyed, .. } => {
                    for e in entries {
                        let key = block_key(state.rule.as_ref(), &e.tuple, keyed);
                        state.blocks.entry(key).or_default().push(e);
                    }
                }
                Kind::List => {
                    for e in entries {
                        let key = block_key(state.rule.as_ref(), &e.tuple, true);
                        state.blocks.entry(key).or_default().push(e);
                    }
                }
                Kind::Lsh {
                    bands,
                    rows_per_band,
                } => {
                    // One slot per band key; entries are shallow Arc
                    // handles, so the b-fold replication is O(1) each.
                    for e in entries {
                        for key in state.rule.lsh_keys(&e.tuple, bands, rows_per_band) {
                            state.blocks.entry(key).or_default().push(e.clone());
                        }
                    }
                }
                Kind::Ordered => {
                    // Always materialize the index (even when empty):
                    // a None here would make the next apply batch-build
                    // from the delta alone and miss delta×base pairs.
                    let conds = state.rule.ordering_conditions();
                    let tuples: Vec<Tuple> = entries.into_iter().map(|e| e.tuple).collect();
                    state.oc = Some(OcIndex::build(conds, &tuples, engine.default_partitions()));
                }
            }
        }
    }

    /// The session's current (repaired-so-far) table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The registered rules.
    pub fn rules(&self) -> &[Arc<dyn Rule>] {
        &self.rules
    }

    /// The executor driving detection stages.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Live violations with their fixes — always equal to a full detect
    /// over [`Session::table`].
    pub fn detected(&self) -> Vec<Detected> {
        self.store.detected()
    }

    /// Number of live violations.
    pub fn violation_count(&self) -> usize {
        self.store.len()
    }

    /// True when the current table has no violations.
    pub fn is_clean(&self) -> bool {
        self.store.is_empty()
    }

    /// Number of batches applied so far.
    pub fn applies(&self) -> u64 {
        self.applies
    }

    /// True when an earlier apply failed after mutation began and the
    /// session refuses further batches (open a new session to recover).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The violation-window geometry, when this session is windowed.
    pub fn window(&self) -> Option<WindowSpec> {
        self.win.as_ref().map(|w| w.spec)
    }

    /// The watermark: the highest logical event time assigned so far.
    /// `None` for unwindowed sessions and for a windowed session that
    /// has seen no events yet.
    pub fn watermark(&self) -> Option<u64> {
        self.win
            .as_ref()
            .filter(|w| w.clock > 0)
            .map(|w| w.clock - 1)
    }

    /// The logical event time of a live tuple (windowed sessions only).
    pub fn event_time(&self, id: TupleId) -> Option<u64> {
        self.win.as_ref().and_then(|w| w.times.get(&id).copied())
    }

    /// Number of tuples inside the live window — equal to the table
    /// length, since expired tuples are retired eagerly. `None` for
    /// unwindowed sessions.
    pub fn window_live(&self) -> Option<usize> {
        self.win.as_ref().map(|w| w.times.len())
    }

    /// Rules quarantined by partial-mode fault isolation, as
    /// `(rule name, cause)` pairs in registration order. Empty in
    /// strict mode and for healthy sessions.
    pub fn quarantined_rules(&self) -> Vec<(String, String)> {
        self.states
            .iter()
            .filter_map(|s| {
                s.quarantined
                    .as_ref()
                    .map(|c| (s.rule.name().to_string(), c.clone()))
            })
            .collect()
    }

    /// Apply one delta batch: materialize it, re-detect only the dirty
    /// candidate units, retract violations whose contributing rows
    /// changed, and re-repair — mirroring a from-scratch cleanse over
    /// the materialized table.
    ///
    /// Durable sessions additionally append the batch to the WAL (and
    /// fsync) *after* validation but *before* any in-memory mutation:
    /// a crash at any later point replays the batch on
    /// [`Session::recover`], and a crash earlier loses nothing because
    /// nothing changed.
    pub fn apply(&mut self, batch: DeltaBatch) -> Result<DeltaReport> {
        self.apply_impl(batch, true)
    }

    fn apply_impl(&mut self, batch: DeltaBatch, log: bool) -> Result<DeltaReport> {
        if self.poisoned {
            return Err(Error::Repair(
                "session poisoned: an earlier apply failed after mutation began; \
                 open a new session over the desired table — durable sessions can \
                 instead be reopened with Session::recover"
                    .into(),
            ));
        }
        let engine = self.executor.engine().clone();
        engine.check_cancelled()?;

        // Validate the whole batch before mutating anything: a
        // malformed batch must corrupt neither the session nor the WAL.
        // Delete-free batches (the common trickle) are checked up front
        // and later edit the table in place through the position index;
        // batches with deletes stage the compacted table through the
        // from-scratch oracle (which validates as it goes).
        let staged = if batch.ops.iter().any(|op| matches!(op, DeltaOp::Delete(_))) {
            Some(apply_batch_to_table(&self.table, &batch)?)
        } else {
            self.validate_delete_free(&batch)?;
            None
        };

        // The batch is valid: make it durable before the mutation it
        // describes begins.
        let wal_seq = if log {
            match &mut self.durable {
                Some(d) => {
                    let seq = d.last_seq + 1;
                    d.wal.append(seq, &batch, &d.dio)?;
                    Metrics::add(&engine.metrics().wal_appends, 1);
                    Some(seq)
                }
                None => None,
            }
        } else {
            None
        };

        // Materialize.
        match staged {
            Some(table) => {
                self.table = table;
                self.pos = self
                    .table
                    .tuples()
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.id(), i))
                    .collect();
            }
            None => {
                for op in &batch.ops {
                    match op {
                        DeltaOp::Insert(t) => {
                            self.pos.insert(t.id(), self.table.len());
                            self.table.push(t.clone());
                        }
                        DeltaOp::Update(t) => self.table.set_at(self.pos[&t.id()], t.clone()),
                        DeltaOp::Delete(_) => unreachable!("delete-free path"),
                    }
                }
            }
        }

        // The table is mutated; everything below must finish for the
        // indexes and violation store to match it again. A governed
        // abort mid-way (cancellation, deadline, memory ceiling, stage
        // failure) leaves them out of sync, so poison the session and
        // let later applies fail loudly instead of computing on
        // corrupted state. For durable sessions the batch is already in
        // the WAL, so recovery replays it against consistent state.
        match self.detect_and_repair(&batch, &engine) {
            Ok(report) => {
                if let Some(seq) = wal_seq {
                    let d = self.durable.as_mut().expect("wal_seq implies durable");
                    d.last_seq = seq;
                    let due = d.snapshot_every > 0 && seq - d.last_snapshot_seq >= d.snapshot_every;
                    if due {
                        self.snapshot()?;
                    }
                }
                Ok(report)
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// Write an atomic snapshot of the full session state (table,
    /// sequence numbers, violation store) and truncate the WAL it
    /// supersedes. Returns the batch sequence the snapshot covers.
    /// Errors if the session is not durable; a failed write leaves the
    /// previous snapshot intact and the session usable.
    pub fn snapshot(&mut self) -> Result<u64> {
        if self.durable.is_none() {
            return Err(Error::Io(
                "session has no durable directory; open it with open_durable".into(),
            ));
        }
        let state = self.capture_state();
        let engine = self.executor.engine().clone();
        let d = self.durable.as_mut().expect("checked above");
        wal::write_snapshot(&d.dir, &state, &d.dio)?;
        Metrics::add(&engine.metrics().snapshots_written, 1);
        d.last_snapshot_seq = state.last_seq;
        d.wal.truncate_all()?;
        Ok(state.last_seq)
    }

    /// Serialize the session's logical state. Per-rule indexes are
    /// omitted — they are a deterministic function of the table and
    /// sequence numbers and are rebuilt on recovery.
    fn capture_state(&self) -> SessionState {
        let seqs = self
            .table
            .tuples()
            .iter()
            .map(|t| *self.seqs.get(&t.id()).expect("live tuple has a seq"))
            .collect();
        let items = self
            .store
            .items
            .iter()
            .map(|(id, s)| StoredState {
                id: *id,
                rule: s.rule as u64,
                violation: s.violation.clone(),
                fixes: s.fixes.clone(),
                prov: match &s.prov {
                    Provenance::Tuples(ids) => ProvState::Tuples(ids.clone()),
                    Provenance::Block(key) => ProvState::Block(key.values().to_vec()),
                },
            })
            .collect();
        SessionState {
            table_name: self.table.name().to_string(),
            attrs: self.table.schema().attrs().to_vec(),
            tuples: self.table.tuples().to_vec(),
            seqs,
            next_seq: self.next_seq,
            applies: self.applies,
            stable: self.stable,
            last_seq: self.durable.as_ref().map_or(0, |d| d.last_seq),
            rule_names: self.rules.iter().map(|r| r.name().to_string()).collect(),
            store_next: self.store.next,
            items,
            window: self.win.as_ref().map(|w| WindowState {
                size: w.spec.size,
                slide: w.spec.slide,
                clock: w.clock,
                times: self
                    .table
                    .tuples()
                    .iter()
                    .map(|t| *w.times.get(&t.id()).expect("live tuple has an event time"))
                    .collect(),
            }),
        }
    }

    /// The post-materialization half of [`Session::apply`]: index
    /// maintenance, delta-driven detection, retraction, and re-repair.
    fn detect_and_repair(&mut self, batch: &DeltaBatch, engine: &Engine) -> Result<DeltaReport> {
        let mut report = DeltaReport::default();
        let mut touched: BTreeSet<TupleId> = BTreeSet::new();
        for op in &batch.ops {
            touched.insert(op.id());
            match op {
                DeltaOp::Insert(t) => {
                    report.inserted += 1;
                    self.seqs.insert(t.id(), self.next_seq);
                    self.next_seq += 1;
                }
                DeltaOp::Update(_) => report.updated += 1,
                DeltaOp::Delete(id) => {
                    report.deleted += 1;
                    self.seqs.remove(id);
                }
            }
        }
        // Window bookkeeping: every insert/update is a fresh arrival
        // (it gets the next event time and advances the watermark);
        // explicit deletes leave the window. Then retire everything the
        // advanced watermark pushed out of its last containing window —
        // expired ids join `touched`, so the redetect below retracts
        // their violations exactly like an explicit delete's.
        if let Some(win) = &mut self.win {
            for op in &batch.ops {
                match op {
                    DeltaOp::Insert(t) | DeltaOp::Update(t) => {
                        win.times.insert(t.id(), win.clock);
                        win.clock += 1;
                    }
                    DeltaOp::Delete(id) => {
                        win.times.remove(id);
                    }
                }
            }
        }
        report.tuples_expired = self.expire_past_watermark(&mut touched)?;
        let fresh = self.snapshot_tuples(&touched);

        // Delta-driven detection + retraction.
        let mut stats = ApplyStats::default();
        self.redetect(&touched, &fresh, &mut stats)?;
        report.components_rerepaired = self.touched_components(&stats);

        // Scoped re-repair: when the batch left the store untouched and
        // the previous loop ended stably, a batch loop's first round
        // would filter every fix as a no-op and break — skip it.
        let skip = stats.added == 0 && stats.retracted == 0 && self.stable;
        report.repair_skipped = skip;
        if skip {
            report.converged = self.store.is_empty();
        } else {
            self.repair_loop(engine, &mut report, &mut stats)?;
        }

        report.tuples_reprocessed = stats.reprocessed.len() as u64;
        report.blocks_dirty = stats.blocks.len() as u64;
        report.violations_added = stats.added;
        report.violations_retracted = stats.retracted;
        report.violations_remaining = self.store.len();
        report.rules_quarantined = self
            .states
            .iter()
            .filter(|s| s.quarantined.is_some())
            .count() as u64;
        let m = engine.metrics();
        Metrics::add(&m.tuples_reprocessed, report.tuples_reprocessed);
        Metrics::add(&m.blocks_dirty, report.blocks_dirty);
        Metrics::add(&m.violations_retracted, report.violations_retracted);
        Metrics::add(&m.components_rerepaired, report.components_rerepaired);
        Metrics::add(&m.tuples_expired, report.tuples_expired as u64);
        self.applies += 1;
        Ok(report)
    }

    /// Check a delete-free batch against the live id set without
    /// mutating anything, replaying [`apply_batch_to_table`]'s op-order
    /// semantics (an update may target an id inserted earlier in the
    /// same batch, but not one inserted later).
    fn validate_delete_free(&self, batch: &DeltaBatch) -> Result<()> {
        let mut added: HashSet<TupleId> = HashSet::new();
        for op in &batch.ops {
            match op {
                DeltaOp::Insert(t) => {
                    if self.pos.contains_key(&t.id()) || !added.insert(t.id()) {
                        return Err(Error::Parse(format!(
                            "delta inserts tuple {} which already exists",
                            t.id()
                        )));
                    }
                    crate::delta::check_arity(&self.table, t)?;
                }
                DeltaOp::Update(t) => {
                    if !self.pos.contains_key(&t.id()) && !added.contains(&t.id()) {
                        return Err(Error::Parse(format!(
                            "delta updates missing tuple {}",
                            t.id()
                        )));
                    }
                    crate::delta::check_arity(&self.table, t)?;
                }
                DeltaOp::Delete(_) => unreachable!("delete-free path"),
            }
        }
        Ok(())
    }

    /// Clone the named tuples out of the current table through the
    /// position index (absent ids were deleted).
    fn snapshot_tuples(&self, ids: &BTreeSet<TupleId>) -> HashMap<TupleId, Tuple> {
        ids.iter()
            .filter_map(|id| {
                self.pos
                    .get(id)
                    .map(|&p| (*id, self.table.tuples()[p].clone()))
            })
            .collect()
    }

    /// Retire every tuple whose last containing window closed behind
    /// the watermark: remove it from the table (compacting positions,
    /// like an explicit delete), drop its sequence number and event
    /// time, and add its id to `touched` so the caller's redetect
    /// retracts its violations through the provenance indexes. Returns
    /// how many tuples were retired. No-op for unwindowed sessions.
    fn expire_past_watermark(&mut self, touched: &mut BTreeSet<TupleId>) -> Result<usize> {
        let expired: BTreeSet<TupleId> = match &self.win {
            Some(win) if win.clock > 0 => {
                let watermark = win.clock - 1;
                win.times
                    .iter()
                    .filter(|(_, &ts)| win.spec.expired(ts, watermark))
                    .map(|(&id, _)| id)
                    .collect()
            }
            _ => return Ok(0),
        };
        if expired.is_empty() {
            return Ok(0);
        }
        let mut deletes = DeltaBatch::new();
        for id in &expired {
            deletes = deletes.delete(*id);
        }
        self.table = apply_batch_to_table(&self.table, &deletes)?;
        self.pos = self
            .table
            .tuples()
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id(), i))
            .collect();
        let win = self.win.as_mut().expect("windowed: expired is non-empty");
        for id in &expired {
            self.seqs.remove(id);
            win.times.remove(id);
            touched.insert(*id);
        }
        Ok(expired.len())
    }

    /// The current value of `cell`, resolved through the position index
    /// (`Table::cell_value` falls back to an O(n) scan once ids and
    /// positions diverge).
    fn cell_value(&self, cell: Cell) -> Option<&Value> {
        self.pos
            .get(&cell.tuple)
            .and_then(|&p| self.table.tuples().get(p))
            .and_then(|t| t.get(cell.attr as usize))
    }

    /// The batch cleanse loop, with per-round re-detection going through
    /// the incremental path (only repair-changed tuples are dirty).
    fn repair_loop(
        &mut self,
        engine: &Engine,
        report: &mut DeltaReport,
        stats: &mut ApplyStats,
    ) -> Result<()> {
        let mut change_count: HashMap<Cell, usize> = HashMap::new();
        let mut converged = false;
        let mut froze = false;
        let mut broke_stable = false;
        for _ in 0..self.options.max_iterations.max(1) {
            engine.check_cancelled()?;
            if self.store.is_empty() {
                converged = true;
                break;
            }
            report.iterations += 1;
            report.total_violations += self.store.len();
            let detected = self.store.detected();
            let assignment = run_repair(
                engine,
                &detected,
                &self.options.strategy,
                self.options.repair_options,
            )?;
            let mut applicable: HashMap<Cell, Value> = HashMap::new();
            for (cell, value) in assignment {
                let count = change_count.entry(cell).or_insert(0);
                if *count >= self.options.max_changes_per_cell {
                    froze = true;
                    continue;
                }
                if self.cell_value(cell) == Some(&value) {
                    continue;
                }
                *count += 1;
                if *count == self.options.max_changes_per_cell {
                    report.frozen_cells += 1;
                }
                applicable.insert(cell, value);
            }
            if applicable.is_empty() {
                broke_stable = !froze;
                break;
            }
            for (cell, value) in &applicable {
                if let Some(old) = self.cell_value(*cell) {
                    report.repair_cost += old.distance(value);
                }
            }
            report.cells_changed += applicable.len();
            self.table.apply_at(&applicable, &self.pos)?;
            let dirty: BTreeSet<TupleId> = applicable.keys().map(|c| c.tuple).collect();
            let fresh = self.snapshot_tuples(&dirty);
            self.redetect(&dirty, &fresh, stats)?;
        }
        if !converged {
            converged = self.store.is_empty();
        }
        report.converged = converged;
        self.stable = converged || broke_stable;
        Ok(())
    }

    /// Re-detect everything the dirty tuples can influence: remove their
    /// old scoped entries from the indexes, retract their violations,
    /// enumerate `delta×resident ∪ delta×delta` units, and run Detect +
    /// GenFix over those units through the lazy Stage API.
    fn redetect(
        &mut self,
        dirty: &BTreeSet<TupleId>,
        fresh: &HashMap<TupleId, Tuple>,
        stats: &mut ApplyStats,
    ) -> Result<()> {
        let engine = self.executor.engine().clone();
        // Rule-agnostic retraction by generating-unit tuple ids.
        for stored in self.store.retract_tuples(dirty) {
            stats.retracted += 1;
            stats.mark_stored(&stored);
        }
        let partial = self.options.isolation.is_partial();
        for ri in 0..self.states.len() {
            engine.check_cancelled()?;
            if self.states[ri].quarantined.is_some() {
                continue;
            }
            let run = self
                .enumerate_rule(ri, dirty, fresh, stats, &engine)
                .and_then(|units| {
                    if units.is_empty() {
                        Ok(())
                    } else {
                        self.detect_units(ri, units, stats, &engine)
                    }
                });
            match run {
                Ok(()) => {}
                // Cancellation and admission failures are about the
                // job, not the rule — never quarantine for them.
                Err(e @ Error::Cancelled { .. }) | Err(e @ Error::Rejected { .. }) => {
                    return Err(e)
                }
                // Partial mode: a mid-apply fault leaves this rule's
                // index integrity unknown, so one strike quarantines —
                // drop its state and carry on with the other rules.
                Err(e) if partial => self.quarantine_rule(ri, &e.to_string(), stats, &engine),
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Quarantine rule `ri`: record the cause, drop its indexes, and
    /// retract its stored violations so repair never acts on a faulted
    /// rule's stale detections. The other rules' state is untouched.
    fn quarantine_rule(&mut self, ri: usize, cause: &str, stats: &mut ApplyStats, engine: &Engine) {
        let state = &mut self.states[ri];
        state.quarantined = Some(cause.to_string());
        state.scoped.clear();
        state.blocks.clear();
        state.oc = None;
        for stored in self.store.retract_rule(ri) {
            stats.retracted += 1;
            stats.mark_stored(&stored);
        }
        let m = engine.metrics();
        Metrics::add(&m.breaker_trips, 1);
        Metrics::add(&m.rules_quarantined, 1);
    }

    /// Update rule `ri`'s index for the dirty tuples and enumerate the
    /// candidate units to re-detect.
    fn enumerate_rule(
        &mut self,
        ri: usize,
        dirty: &BTreeSet<TupleId>,
        fresh: &HashMap<TupleId, Tuple>,
        stats: &mut ApplyStats,
        engine: &Engine,
    ) -> Result<Vec<(Provenance, DetectUnit)>> {
        let state = &mut self.states[ri];
        let kind = state.kind.clone();
        let mut dirty_keys: BTreeSet<BlockKey> = BTreeSet::new();

        // Remove old scoped entries from the index, by the seq they
        // were inserted under (the live seq may differ by now).
        for id in dirty {
            let Some((old_seq, reps)) = state.scoped.remove(id) else {
                continue;
            };
            match &kind {
                Kind::Single => {}
                Kind::Blocked { keyed, .. } => {
                    for (rep, t) in &reps {
                        let key = block_key(state.rule.as_ref(), t, *keyed);
                        remove_entry(&mut state.blocks, &key, old_seq, *id, *rep, t);
                        dirty_keys.insert(key);
                    }
                }
                Kind::List => {
                    for (rep, t) in &reps {
                        let key = block_key(state.rule.as_ref(), t, true);
                        remove_entry(&mut state.blocks, &key, old_seq, *id, *rep, t);
                        dirty_keys.insert(key);
                    }
                }
                Kind::Lsh {
                    bands,
                    rows_per_band,
                } => {
                    for (rep, t) in &reps {
                        for key in state.rule.lsh_keys(t, *bands, *rows_per_band) {
                            remove_entry(&mut state.blocks, &key, old_seq, *id, *rep, t);
                            dirty_keys.insert(key);
                        }
                    }
                }
                Kind::Ordered => {
                    if let Some(oc) = &mut state.oc {
                        for (_, t) in &reps {
                            oc.remove(t);
                        }
                    }
                }
            }
        }

        // Scope the new versions, in table order.
        let mut new_entries: Vec<Entry> = Vec::new();
        for id in dirty {
            let Some(t) = fresh.get(id) else { continue };
            let reps = state.rule.scope(t);
            let seq = *self.seqs.get(id).expect("live tuple has a seq");
            state.scoped.insert(
                *id,
                (
                    seq,
                    reps.iter()
                        .cloned()
                        .enumerate()
                        .map(|(i, s)| (i as u32, s))
                        .collect(),
                ),
            );
            for (i, s) in reps.into_iter().enumerate() {
                new_entries.push(Entry {
                    seq,
                    rep: i as u32,
                    tuple: s,
                });
            }
        }
        new_entries.sort_by_key(Entry::pos);

        let mut units: Vec<(Provenance, DetectUnit)> = Vec::new();
        match kind {
            Kind::Single => {
                for e in new_entries {
                    stats.reprocessed.insert(e.tuple.id());
                    units.push((
                        Provenance::Tuples(vec![e.tuple.id()]),
                        DetectUnit::Single(e.tuple),
                    ));
                }
            }
            Kind::Blocked {
                keyed,
                ordered,
                distinct_ids,
            } => {
                let mut by_key: BTreeMap<BlockKey, Vec<Entry>> = BTreeMap::new();
                for e in new_entries {
                    let key = block_key(state.rule.as_ref(), &e.tuple, keyed);
                    dirty_keys.insert(key.clone());
                    by_key.entry(key).or_default().push(e);
                }
                let mut pairs = 0u64;
                let mut emit = |a: &Entry, b: &Entry, units: &mut Vec<(Provenance, DetectUnit)>| {
                    if distinct_ids && a.tuple.id() == b.tuple.id() {
                        return;
                    }
                    stats.reprocessed.insert(a.tuple.id());
                    stats.reprocessed.insert(b.tuple.id());
                    if ordered {
                        pairs += 2;
                        units.push((
                            Provenance::Tuples(vec![a.tuple.id(), b.tuple.id()]),
                            DetectUnit::Pair(a.tuple.clone(), b.tuple.clone()),
                        ));
                        units.push((
                            Provenance::Tuples(vec![b.tuple.id(), a.tuple.id()]),
                            DetectUnit::Pair(b.tuple.clone(), a.tuple.clone()),
                        ));
                    } else {
                        pairs += 1;
                        let (lo, hi) = if a.pos() <= b.pos() { (a, b) } else { (b, a) };
                        units.push((
                            Provenance::Tuples(vec![lo.tuple.id(), hi.tuple.id()]),
                            DetectUnit::Pair(lo.tuple.clone(), hi.tuple.clone()),
                        ));
                    }
                };
                for (key, news) in by_key {
                    if let Some(residents) = state.blocks.get(&key) {
                        for e in &news {
                            for r in residents {
                                emit(e, r, &mut units);
                            }
                        }
                    }
                    for i in 0..news.len() {
                        for j in (i + 1)..news.len() {
                            emit(&news[i], &news[j], &mut units);
                        }
                    }
                    let slot = state.blocks.entry(key).or_default();
                    for e in news {
                        let at = slot.partition_point(|x| x.pos() < e.pos());
                        slot.insert(at, e);
                    }
                }
                Metrics::add(&engine.metrics().pairs_generated, pairs);
            }
            Kind::List => {
                for e in new_entries {
                    let key = block_key(state.rule.as_ref(), &e.tuple, true);
                    dirty_keys.insert(key.clone());
                    let slot = state.blocks.entry(key).or_default();
                    let at = slot.partition_point(|x| x.pos() < e.pos());
                    slot.insert(at, e);
                }
                for key in &dirty_keys {
                    for stored in self.store.retract_block(ri, key) {
                        stats.retracted += 1;
                        stats.mark_stored(&stored);
                    }
                    let Some(entries) = self.states[ri].blocks.get(key) else {
                        continue;
                    };
                    if entries.is_empty() {
                        continue;
                    }
                    let block: Vec<Tuple> = entries.iter().map(|e| e.tuple.clone()).collect();
                    for t in &block {
                        stats.reprocessed.insert(t.id());
                    }
                    units.push((Provenance::Block(key.clone()), DetectUnit::List(block)));
                }
            }
            Kind::Lsh {
                bands,
                rows_per_band,
            } => {
                // Band keys are computed once per delta entry, then the
                // entry probes every one of its band buckets. A pair
                // can meet in several bands (delta×resident) or via
                // several shared keys (delta×delta); the `seen` set
                // keeps each unordered pair single-shot, mirroring the
                // batch executor's first-shared-band rule. Pairs are
                // oriented (lo, hi) by enumeration position — the same
                // orientation the batch reducer produces from its
                // table-ordered buckets — so violations come out
                // byte-identical to a from-scratch run.
                let keyed: Vec<(Entry, Vec<BlockKey>)> = new_entries
                    .into_iter()
                    .map(|e| {
                        let keys = state.rule.lsh_keys(&e.tuple, bands, rows_per_band);
                        (e, keys)
                    })
                    .collect();
                let mut seen: BTreeSet<((u64, u32), (u64, u32))> = BTreeSet::new();
                let (mut pairs, mut pruned, mut probed) = (0u64, 0u64, 0u64);
                let mut emit = |a: &Entry, b: &Entry, units: &mut Vec<(Provenance, DetectUnit)>| {
                    stats.reprocessed.insert(a.tuple.id());
                    stats.reprocessed.insert(b.tuple.id());
                    pairs += 1;
                    let (lo, hi) = if a.pos() <= b.pos() { (a, b) } else { (b, a) };
                    units.push((
                        Provenance::Tuples(vec![lo.tuple.id(), hi.tuple.id()]),
                        DetectUnit::Pair(lo.tuple.clone(), hi.tuple.clone()),
                    ));
                };
                // delta × resident
                for (e, keys) in &keyed {
                    for key in keys {
                        dirty_keys.insert(key.clone());
                        let Some(residents) = state.blocks.get(key) else {
                            continue;
                        };
                        if !residents.is_empty() {
                            probed += 1;
                        }
                        for r in residents {
                            let pr = pair_key(e.pos(), r.pos());
                            if seen.insert(pr) {
                                emit(e, r, &mut units);
                            } else {
                                pruned += 1;
                            }
                        }
                    }
                }
                // delta × delta: bucket the news by band key
                let mut delta_buckets: BTreeMap<&BlockKey, Vec<usize>> = BTreeMap::new();
                for (idx, (_, keys)) in keyed.iter().enumerate() {
                    for key in keys {
                        delta_buckets.entry(key).or_default().push(idx);
                    }
                }
                for members in delta_buckets.values() {
                    if members.len() > 1 {
                        probed += 1;
                    }
                    for x in 0..members.len() {
                        for y in (x + 1)..members.len() {
                            let a = &keyed[members[x]].0;
                            let b = &keyed[members[y]].0;
                            let pr = pair_key(a.pos(), b.pos());
                            if seen.insert(pr) {
                                emit(a, b, &mut units);
                            } else {
                                pruned += 1;
                            }
                        }
                    }
                }
                // index the new entries under every band key
                for (e, keys) in keyed {
                    for key in keys {
                        let slot = state.blocks.entry(key).or_default();
                        let at = slot.partition_point(|x| x.pos() < e.pos());
                        slot.insert(at, e.clone());
                    }
                }
                let metrics = engine.metrics();
                Metrics::add(&metrics.pairs_generated, pairs);
                Metrics::add(&metrics.lsh_candidate_pairs, pairs);
                Metrics::add(&metrics.lsh_pairs_pruned, pruned);
                Metrics::add(&metrics.lsh_bands_probed, probed);
            }
            Kind::Ordered => {
                let conds = self.states[ri].rule.ordering_conditions();
                let delta: Vec<Tuple> = new_entries.iter().map(|e| e.tuple.clone()).collect();
                let state = &mut self.states[ri];
                let pairs = match &mut state.oc {
                    Some(oc) => {
                        let pairs = oc.probe(engine, &delta);
                        for t in &delta {
                            oc.insert(t.clone());
                        }
                        pairs
                    }
                    None => {
                        // First ingest: batch-build the index and take
                        // the pairs from a batch OCJoin, exactly like a
                        // full-detect pipeline would.
                        state.oc = Some(OcIndex::build(
                            conds.clone(),
                            &delta,
                            engine.default_partitions(),
                        ));
                        try_ocjoin(
                            PDataset::from_vec(engine.clone(), delta.clone()),
                            &conds,
                            OcJoinConfig::default(),
                        )?
                        .try_collect()?
                    }
                };
                if !delta.is_empty() {
                    dirty_keys.insert(BlockKey::new());
                }
                for (a, b) in pairs {
                    stats.reprocessed.insert(a.id());
                    stats.reprocessed.insert(b.id());
                    units.push((
                        Provenance::Tuples(vec![a.id(), b.id()]),
                        DetectUnit::Pair(a, b),
                    ));
                }
            }
        }
        for key in dirty_keys {
            stats.blocks.insert((ri, key));
        }
        Ok(units)
    }

    /// Run Detect + GenFix over the enumerated units as one fused lazy
    /// stage (fault retries, memory budget, and cancellation apply), and
    /// fold the results into the store.
    fn detect_units(
        &mut self,
        ri: usize,
        units: Vec<(Provenance, DetectUnit)>,
        stats: &mut ApplyStats,
        engine: &Engine,
    ) -> Result<()> {
        let rule = Arc::clone(&self.states[ri].rule);
        let metrics = engine.metrics().clone();
        let op = format!("delta-detect+genfix({})", rule.name());
        let found: Vec<(Provenance, Violation, Vec<Fix>)> =
            PDataset::from_vec(engine.clone(), units)
                .stage()
                .map_parts(op, move |part: Vec<(Provenance, DetectUnit)>| {
                    Metrics::add(&metrics.detect_calls, part.len() as u64);
                    let mut out = Vec::new();
                    for (prov, unit) in part {
                        for v in rule.detect(&unit) {
                            let fixes = rule.gen_fix(&v);
                            out.push((prov.clone(), v, fixes));
                        }
                    }
                    Ok(out)
                })
                .run()?
                .try_collect()?;
        Metrics::add(&engine.metrics().violations, found.len() as u64);
        for (prov, violation, fixes) in found {
            stats.added += 1;
            let stored = Stored {
                rule: ri,
                violation,
                fixes,
                prov,
            };
            stats.mark_stored(&stored);
            self.store
                .add(stored.rule, stored.violation, stored.fixes, stored.prov);
        }
        Ok(())
    }

    /// Count connected components of the violation graph (tuples linked
    /// by sharing a violation) containing a tuple whose violations were
    /// added or retracted this apply.
    fn touched_components(&self, stats: &ApplyStats) -> u64 {
        if stats.markers.is_empty() {
            return 0;
        }
        let mut uf = UnionFind::new();
        for stored in self.store.items.values() {
            let mut ids: Vec<TupleId> = stored.violation.tuple_ids();
            if let Provenance::Tuples(unit) = &stored.prov {
                ids.extend(unit.iter().copied());
            }
            for w in ids.windows(2) {
                uf.union(w[0], w[1]);
            }
        }
        let roots: BTreeSet<u64> = stats.markers.iter().map(|&id| uf.find(id)).collect();
        roots.len() as u64
    }
}

/// The blocking key for a scoped tuple (`[]` when the rule has no Block
/// operator and everything shares one global block).
fn block_key(rule: &dyn Rule, t: &Tuple, keyed: bool) -> BlockKey {
    if keyed {
        rule.block(t).unwrap_or_default()
    } else {
        BlockKey::new()
    }
}

/// Canonical unordered identity of a candidate pair, by enumeration
/// position — the LSH seen-set key that keeps a pair meeting in several
/// bands single-shot.
fn pair_key(a: (u64, u32), b: (u64, u32)) -> ((u64, u32), (u64, u32)) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Drop the `(seq, rep)` entry for tuple `id` from `blocks[key]`.
/// `seq` is the sequence number recorded when the entry was indexed, so
/// the binary search lands on it even when the tuple's live seq has
/// since changed (delete-then-reinsert) or is gone (plain delete); the
/// linear scan is a defensive fallback only.
fn remove_entry(
    blocks: &mut HashMap<BlockKey, Vec<Entry>>,
    key: &BlockKey,
    seq: u64,
    id: TupleId,
    rep: u32,
    t: &Tuple,
) {
    let Some(slot) = blocks.get_mut(key) else {
        return;
    };
    let idx = slot
        .binary_search_by(|e| e.pos().cmp(&(seq, rep)))
        .ok()
        .filter(|&i| slot[i].tuple.id() == id)
        .or_else(|| {
            slot.iter()
                .position(|e| e.tuple.id() == id && e.rep == rep && e.tuple == *t)
        });
    if let Some(i) = idx {
        slot.remove(i);
    }
    if slot.is_empty() {
        blocks.remove(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_common::Schema;
    use bigdansing_rules::FdRule;

    fn fd_session(rows: Vec<Vec<Value>>) -> Session {
        let schema = Schema::parse("zipcode,city");
        let table = Table::from_rows("t", schema.clone(), rows);
        let rules: Vec<Arc<dyn Rule>> =
            vec![Arc::new(FdRule::parse("zipcode -> city", &schema).unwrap())];
        Session::new(
            Executor::new(Engine::sequential()),
            rules,
            &table,
            SessionOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn open_session_detects_existing_violations() {
        let s = fd_session(vec![
            vec![Value::Int(1), Value::str("LA")],
            vec![Value::Int(1), Value::str("SF")],
        ]);
        assert_eq!(s.violation_count(), 1);
        assert!(!s.is_clean());
    }

    #[test]
    fn insert_creating_violation_is_detected_and_repaired() {
        let mut s = fd_session(vec![
            vec![Value::Int(1), Value::str("LA")],
            vec![Value::Int(2), Value::str("NY")],
        ]);
        assert!(s.is_clean());
        let report = s
            .apply(DeltaBatch::new().insert(10, vec![Value::Int(1), Value::str("SF")]))
            .unwrap();
        assert_eq!(report.inserted, 1);
        assert!(report.violations_added >= 1);
        assert!(report.converged, "repair should clean the FD violation");
        assert!(s.is_clean());
        // only the dirty block's tuples were reprocessed
        assert!(report.tuples_reprocessed < 4);
    }

    #[test]
    fn partial_isolation_quarantines_faulty_rule_and_continues() {
        let schema = Schema::parse("zipcode,city");
        let table = Table::from_rows(
            "t",
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::str("LA")],
                vec![Value::Int(2), Value::str("NY")],
            ],
        );
        let rules: Vec<Arc<dyn Rule>> = vec![
            Arc::new(FdRule::parse("zipcode -> city", &schema).unwrap()),
            Arc::new(
                bigdansing_rules::UdfRule::builder("udf:faulty", |_| panic!("bad udf"))
                    .unit_kind(bigdansing_rules::UnitKind::Single)
                    .build(),
            ),
        ];
        let mut s = Session::new(
            Executor::new(Engine::sequential()),
            rules,
            &table,
            SessionOptions {
                isolation: IsolationOptions::partial(),
                ..Default::default()
            },
        )
        .unwrap();
        // the faulty rule was quarantined during the opening detect;
        // only its state is poisoned, not the session
        assert_eq!(
            s.quarantined_rules()
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["udf:faulty"]
        );
        assert!(!s.is_poisoned());
        // the healthy FD rule keeps detecting and repairing
        let report = s
            .apply(DeltaBatch::new().insert(10, vec![Value::Int(1), Value::str("SF")]))
            .unwrap();
        assert!(report.violations_added >= 1);
        assert!(report.converged);
        assert_eq!(report.rules_quarantined, 1);
        assert!(s.is_clean());
    }

    #[test]
    fn quarantine_retracts_the_faulted_rules_stored_violations() {
        // the faulty rule produces violations for a while, then starts
        // panicking: quarantine must retract what it already stored
        let table = Table::from_rows(
            "t",
            Schema::parse("zipcode,city"),
            vec![
                vec![Value::Int(1), Value::str("LA")],
                vec![Value::Int(2), Value::str("NY")],
            ],
        );
        let trip = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let trip_in_detect = Arc::clone(&trip);
        let rules: Vec<Arc<dyn Rule>> = vec![Arc::new(
            bigdansing_rules::UdfRule::builder("udf:flaky", move |unit| {
                if trip_in_detect.load(std::sync::atomic::Ordering::SeqCst) {
                    panic!("flaky udf tripped");
                }
                let t = match unit {
                    DetectUnit::Single(t) => t,
                    other => panic!("unexpected unit {other:?}"),
                };
                // complain about every row, with no fixes: the store
                // keeps these violations live across applies
                vec![Violation::new("udf:flaky").with_cell(t.cell(1), t.value(1).clone())]
            })
            .unit_kind(bigdansing_rules::UnitKind::Single)
            .build(),
        )];
        let mut s = Session::new(
            Executor::new(Engine::sequential()),
            rules,
            &table,
            SessionOptions {
                isolation: IsolationOptions::partial(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(s.violation_count(), 2);
        assert!(s.quarantined_rules().is_empty());
        trip.store(true, std::sync::atomic::Ordering::SeqCst);
        let report = s
            .apply(DeltaBatch::new().insert(10, vec![Value::Int(3), Value::str("SEA")]))
            .unwrap();
        assert_eq!(report.rules_quarantined, 1);
        assert!(
            s.is_clean(),
            "quarantine must retract the rule's stored violations"
        );
        assert!(!s.is_poisoned());
    }

    #[test]
    fn strict_mode_poisons_the_session_on_rule_fault() {
        let table = Table::from_rows(
            "t",
            Schema::parse("zipcode,city"),
            vec![vec![Value::Int(1), Value::str("LA")]],
        );
        let rules: Vec<Arc<dyn Rule>> = vec![Arc::new(
            bigdansing_rules::UdfRule::builder("udf:faulty", |_| panic!("bad udf"))
                .unit_kind(bigdansing_rules::UnitKind::Single)
                .build(),
        )];
        let err = Session::new(
            Executor::new(Engine::sequential()),
            rules,
            &table,
            SessionOptions::default(),
        );
        assert!(err.is_err(), "strict isolation propagates the fault");
    }

    #[test]
    fn delete_retracts_violations() {
        let mut s = fd_session(vec![
            vec![Value::Int(1), Value::str("LA")],
            vec![Value::Int(1), Value::str("SF")],
        ]);
        assert_eq!(s.violation_count(), 1);
        let report = s.apply(DeltaBatch::new().delete(1)).unwrap();
        assert_eq!(report.violations_retracted, 1);
        assert!(s.is_clean());
        assert!(report.converged);
    }

    #[test]
    fn malformed_batch_leaves_session_intact() {
        let mut s = fd_session(vec![
            vec![Value::Int(1), Value::str("LA")],
            vec![Value::Int(2), Value::str("NY")],
        ]);
        // Valid insert followed by an invalid update: the in-place fast
        // path must reject the whole batch before mutating anything.
        let bad = DeltaBatch::new()
            .insert(7, vec![Value::Int(3), Value::str("CH")])
            .update(99, vec![Value::Int(3), Value::str("CH")]);
        assert!(s.apply(bad).is_err());
        assert_eq!(s.table().len(), 2);
        assert!(s.is_clean());
        // Arity mismatches are caught up front too.
        assert!(s
            .apply(DeltaBatch::new().insert(8, vec![Value::Int(3)]))
            .is_err());
        assert_eq!(s.table().len(), 2);
        // An update may target an id inserted later in the batch only
        // in op order — this one comes first, so it must fail.
        let out_of_order = DeltaBatch::new()
            .update(7, vec![Value::Int(3), Value::str("CH")])
            .insert(7, vec![Value::Int(3), Value::str("CH")]);
        assert!(s.apply(out_of_order).is_err());
        // The session still works after the rejections.
        let r = s
            .apply(DeltaBatch::new().insert(7, vec![Value::Int(3), Value::str("CH")]))
            .unwrap();
        assert!(r.converged);
        assert_eq!(s.table().len(), 3);
    }

    #[test]
    fn delete_then_reinsert_same_id_purges_stale_block_entry() {
        let mut s = fd_session(vec![
            vec![Value::Int(1), Value::str("LA")],
            vec![Value::Int(2), Value::str("NY")],
        ]);
        assert!(s.is_clean());
        // Tuple 0 dies and is reborn in the SAME block with a new city.
        // `apply` reassigns its seq before the indexes are cleaned up,
        // so removal must go by the seq the old entry was indexed under
        // — otherwise the dead version stays resident and pairs with
        // the reborn one as a phantom violation.
        let r = s
            .apply(
                DeltaBatch::new()
                    .delete(0)
                    .insert(0, vec![Value::Int(1), Value::str("SF")]),
            )
            .unwrap();
        assert_eq!(
            r.violations_added, 0,
            "reborn tuple is the only zip-1 row; any violation pairs it \
             with its dead version"
        );
        assert!(s.is_clean());
        // Future deltas into the block must pair with the live version only.
        let r2 = s
            .apply(DeltaBatch::new().insert(9, vec![Value::Int(1), Value::str("SF")]))
            .unwrap();
        assert_eq!(r2.violations_added, 0);
        assert!(s.is_clean());
    }

    #[test]
    fn mid_apply_failure_poisons_the_session() {
        use bigdansing_dataflow::{ExecMode, FaultInjector, FaultPolicy};
        // An empty base runs no detect stage at open; the first batch
        // does, and every task attempt panics — a deterministic failure
        // after the table has been materialized.
        let schema = Schema::parse("zipcode,city");
        let table = Table::from_rows("t", schema.clone(), vec![]);
        let engine = Engine::builder(ExecMode::Parallel)
            .workers(2)
            .fault_policy(FaultPolicy::fail_fast())
            .fault_injector(FaultInjector::seeded(1).with_task_panics(1.0))
            .build();
        let rules: Vec<Arc<dyn Rule>> =
            vec![Arc::new(FdRule::parse("zipcode -> city", &schema).unwrap())];
        let mut s = Session::new(
            Executor::new(engine),
            rules,
            &table,
            SessionOptions::default(),
        )
        .unwrap();
        assert!(!s.is_poisoned());
        // Two inserts into one block form a delta×delta pair, so the
        // batch runs a detect stage (a lone insert would not).
        let err = s
            .apply(
                DeltaBatch::new()
                    .insert(0, vec![Value::Int(1), Value::str("LA")])
                    .insert(1, vec![Value::Int(1), Value::str("SF")]),
            )
            .unwrap_err();
        assert!(
            !err.to_string().contains("poisoned"),
            "first failure surfaces the stage error: {err}"
        );
        assert!(s.is_poisoned());
        // Every later apply — even an empty batch — is refused.
        let err = s.apply(DeltaBatch::new()).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
    }

    #[test]
    fn clean_delta_skips_repair_after_stable_apply() {
        let mut s = fd_session(vec![
            vec![Value::Int(1), Value::str("LA")],
            vec![Value::Int(2), Value::str("NY")],
        ]);
        // first apply establishes stability
        let r1 = s
            .apply(DeltaBatch::new().insert(5, vec![Value::Int(3), Value::str("CH")]))
            .unwrap();
        assert!(r1.converged);
        let r2 = s
            .apply(DeltaBatch::new().insert(6, vec![Value::Int(4), Value::str("SD")]))
            .unwrap();
        assert!(r2.repair_skipped, "clean insert into stable session");
        assert!(r2.converged);
    }

    #[test]
    fn empty_rules_is_an_error() {
        let schema = Schema::parse("a");
        let table = Table::from_rows("t", schema, vec![vec![Value::Int(1)]]);
        assert!(Session::new(
            Executor::new(Engine::sequential()),
            Vec::new(),
            &table,
            SessionOptions::default(),
        )
        .is_err());
    }

    // --- durability ----------------------------------------------------

    fn err_of<T>(r: Result<T>) -> Error {
        match r {
            Ok(_) => panic!("expected an error"),
            Err(e) => e,
        }
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("bd-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn fd_rules(schema: &Schema) -> Vec<Arc<dyn Rule>> {
        vec![Arc::new(FdRule::parse("zipcode -> city", schema).unwrap())]
    }

    fn base_table(schema: &Schema) -> Table {
        Table::from_rows(
            "t",
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::str("LA")],
                vec![Value::Int(2), Value::str("NY")],
            ],
        )
    }

    fn batches() -> Vec<DeltaBatch> {
        vec![
            DeltaBatch::new().insert(10, vec![Value::Int(1), Value::str("SF")]),
            DeltaBatch::new()
                .insert(11, vec![Value::Int(3), Value::str("CH")])
                .update(10, vec![Value::Int(2), Value::str("NY")]),
            DeltaBatch::new().delete(1),
            DeltaBatch::new().insert(12, vec![Value::Int(3), Value::str("AU")]),
        ]
    }

    fn assert_same(a: &Session, b: &Session) {
        assert_eq!(a.table().tuples(), b.table().tuples());
        assert_eq!(a.table().schema().attrs(), b.table().schema().attrs());
        assert_eq!(a.detected(), b.detected());
        assert_eq!(a.violation_count(), b.violation_count());
    }

    #[test]
    fn durable_session_matches_plain_session() {
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("parity");
        let mut durable = Session::open_durable(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir).snapshot_every(2),
        )
        .unwrap();
        let mut plain = Session::new(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions::default(),
        )
        .unwrap();
        for b in batches() {
            durable.apply(b.clone()).unwrap();
            plain.apply(b).unwrap();
            assert_same(&durable, &plain);
        }
        let m = durable.executor().engine().metrics().snapshot();
        assert_eq!(m.wal_appends, 4);
        assert!(m.snapshots_written >= 2, "baseline + cadence snapshots");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_replays_wal_suffix_and_matches_uninterrupted() {
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("replay");
        // Cadence 100: nothing beyond the baseline snapshot, so every
        // batch must come back from the WAL.
        let mut durable = Session::open_durable(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir).snapshot_every(100),
        )
        .unwrap();
        for b in batches() {
            durable.apply(b).unwrap();
        }
        drop(durable); // "crash" — recovery sees only the disk state

        let (recovered, stats) = Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir).snapshot_every(100),
        )
        .unwrap();
        assert_eq!(stats.snapshot_seq, 0);
        assert_eq!(stats.replayed, 4);
        assert_eq!(stats.last_seq, 4);

        let mut oracle = Session::new(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions::default(),
        )
        .unwrap();
        for b in batches() {
            oracle.apply(b).unwrap();
        }
        assert_same(&recovered, &oracle);

        // Recovery wrote a catch-up snapshot: a second recovery replays
        // nothing and still matches.
        let (again, stats2) = Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir).snapshot_every(100),
        )
        .unwrap();
        assert_eq!(stats2.replayed, 0);
        assert_eq!(stats2.snapshot_seq, 4);
        assert_same(&again, &oracle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_session_keeps_cleansing_correctly() {
        // Indexes are rebuilt, not restored — later deltas must still
        // pair against pre-crash residents.
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("cont");
        let mut s = Session::open_durable(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir).snapshot_every(1),
        )
        .unwrap();
        s.apply(DeltaBatch::new().insert(10, vec![Value::Int(3), Value::str("CH")]))
            .unwrap();
        drop(s);
        let (mut recovered, _) = Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        // Conflicts with resident tuple 10 (zip 3 → CH): detection must
        // see the delta×base pair and repair it.
        let r = recovered
            .apply(DeltaBatch::new().insert(11, vec![Value::Int(3), Value::str("AU")]))
            .unwrap();
        assert!(r.violations_added >= 1, "delta×resident pair detected");
        assert!(r.converged);
        assert!(recovered.is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_durable_session_is_recoverable() {
        use bigdansing_dataflow::{ExecMode, FaultInjector, FaultPolicy};
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("poison");
        let table = Table::from_rows("t", schema.clone(), vec![]);
        let engine = Engine::builder(ExecMode::Parallel)
            .workers(2)
            .fault_policy(FaultPolicy::fail_fast())
            .fault_injector(FaultInjector::seeded(1).with_task_panics(1.0))
            .build();
        let mut s = Session::open_durable(
            Executor::new(engine),
            fd_rules(&schema),
            &table,
            SessionOptions::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        let batch = DeltaBatch::new()
            .insert(0, vec![Value::Int(1), Value::str("LA")])
            .insert(1, vec![Value::Int(1), Value::str("SF")]);
        assert!(s.apply(batch.clone()).is_err());
        assert!(s.is_poisoned());
        drop(s);

        // The batch reached the WAL before the failing detect stage;
        // recovery with a healthy engine replays it to completion.
        let (recovered, stats) = Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        assert_eq!(stats.replayed, 1);
        assert_eq!(recovered.table().len(), 2);
        assert!(recovered.is_clean(), "replay repaired the FD violation");

        let mut oracle = Session::new(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &table,
            SessionOptions::default(),
        )
        .unwrap();
        oracle.apply(batch).unwrap();
        assert_same(&recovered, &oracle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_durable_refuses_existing_snapshot() {
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("refuse");
        let open = |dir: &std::path::Path| {
            Session::open_durable(
                Executor::new(Engine::sequential()),
                fd_rules(&schema),
                &base_table(&schema),
                SessionOptions::default(),
                DurabilityOptions::new(dir),
            )
        };
        assert!(open(&dir).is_ok());
        let err = err_of(open(&dir));
        assert!(err.to_string().contains("recover"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_rejects_rule_mismatch_and_missing_dir() {
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("mismatch");
        Session::open_durable(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        let other: Vec<Arc<dyn Rule>> =
            vec![Arc::new(FdRule::parse("city -> zipcode", &schema).unwrap())];
        let err = err_of(Session::recover(
            Executor::new(Engine::sequential()),
            other,
            SessionOptions::default(),
            DurabilityOptions::new(&dir),
        ));
        assert!(err.to_string().contains("rule set mismatch"), "{err}");

        let empty = durable_dir("mismatch-empty");
        let err = err_of(Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&empty),
        ));
        assert!(err.to_string().contains("no snapshot"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn malformed_batch_never_reaches_the_wal() {
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("badbatch");
        let mut s = Session::open_durable(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir).snapshot_every(100),
        )
        .unwrap();
        assert!(s
            .apply(DeltaBatch::new().update(99, vec![Value::Int(1), Value::str("X")]))
            .is_err());
        assert!(s.apply(DeltaBatch::new().delete(42).delete(42)).is_err());
        s.apply(DeltaBatch::new().insert(5, vec![Value::Int(9), Value::str("TK")]))
            .unwrap();
        drop(s);
        let (recovered, stats) = Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        assert_eq!(stats.replayed, 1, "only the valid batch was logged");
        assert_eq!(recovered.table().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn windowed_session(spec: WindowSpec) -> Session {
        let schema = Schema::parse("zipcode,city");
        Session::new(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            SessionOptions {
                window: Some(spec),
                ..Default::default()
            },
        )
        .unwrap()
    }

    /// Session-level oracle: after every apply, the windowed session's
    /// violation count must match a from-scratch detect over its table.
    fn assert_window_invariant(s: &Session) {
        let schema = Schema::parse("zipcode,city");
        let fresh = Session::new(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            s.table(),
            SessionOptions::default(),
        )
        .unwrap();
        assert_eq!(
            s.violation_count(),
            fresh.violation_count(),
            "windowed store must equal full detect over the live table"
        );
    }

    #[test]
    fn unwindowed_session_has_no_watermark() {
        let s = fd_session(vec![vec![Value::Int(1), Value::str("LA")]]);
        assert!(s.window().is_none());
        assert!(s.watermark().is_none());
        assert!(s.window_live().is_none());
    }

    #[test]
    fn tumbling_window_expires_closed_window_tuples() {
        let mut s = windowed_session(WindowSpec::tumbling(4).unwrap());
        // base rows carry event times 0 and 1 → watermark 1, window [0,4) open
        assert_eq!(s.watermark(), Some(1));
        assert_eq!(s.window_live(), Some(2));
        assert_eq!(s.event_time(0), Some(0));

        let insert = |s: &mut Session, id: u64, zip: i64, city: &str| {
            s.apply(DeltaBatch::new().insert(id, vec![Value::Int(zip), Value::str(city)]))
                .unwrap()
        };
        // ts 2 and 3 keep the watermark inside [0,4): nothing expires yet
        let r = insert(&mut s, 10, 3, "CH");
        assert_eq!((r.tuples_expired, s.watermark()), (0, Some(2)));
        let r = insert(&mut s, 11, 4, "SE");
        assert_eq!((r.tuples_expired, s.watermark()), (0, Some(3)));
        assert_eq!(s.window_live(), Some(4));

        // ts 4 closes the [0,4) window: all four earlier tuples retire
        let r = insert(&mut s, 12, 5, "DC");
        assert_eq!(r.tuples_expired, 4);
        assert_eq!(s.watermark(), Some(4));
        assert_eq!(s.window_live(), Some(1));
        assert_eq!(s.table().len(), 1);
        assert_window_invariant(&s);
    }

    #[test]
    fn sliding_window_keeps_trailing_span() {
        let mut s = windowed_session(WindowSpec::sliding(4, 2).unwrap());
        let insert = |s: &mut Session, id: u64, zip: i64| {
            s.apply(DeltaBatch::new().insert(id, vec![Value::Int(zip), Value::str("X")]))
                .unwrap()
        };
        // base ts {0,1}; ts 2,3,4 arrive → wm 4 expires ts 0,1 (their last
        // window [0,4) closed); live = {2,3,4}
        insert(&mut s, 10, 3);
        insert(&mut s, 11, 4);
        let r = insert(&mut s, 12, 5);
        assert_eq!(r.tuples_expired, 2);
        assert_eq!(s.window_live(), Some(3));
        // ts 5 → wm 5: no window boundary crossed
        let r = insert(&mut s, 13, 6);
        assert_eq!(r.tuples_expired, 0);
        assert_eq!(s.window_live(), Some(4));
        // ts 6 → wm 6 expires ts 2,3 ([2,6) closed); live = {4,5,6}
        let r = insert(&mut s, 14, 7);
        assert_eq!(r.tuples_expired, 2);
        assert_eq!(s.window_live(), Some(3));
        assert_window_invariant(&s);
    }

    #[test]
    fn expiry_retracts_violations_of_expired_tuples() {
        let mut s = windowed_session(WindowSpec::tumbling(4).unwrap());
        // conflicting duplicate zipcode: a violation among live tuples
        s.apply(DeltaBatch::new().insert(10, vec![Value::Int(1), Value::str("SF")]))
            .unwrap();
        assert!(s.is_clean(), "repair resolves the FD conflict");
        // push the watermark past the first window; expired tuples must
        // leave no dangling violations behind
        for (i, id) in [(6, 20u64), (7, 21), (8, 22)] {
            s.apply(DeltaBatch::new().insert(id, vec![Value::Int(i), Value::str("Y")]))
                .unwrap();
        }
        assert!(s.table().len() <= 4);
        assert_window_invariant(&s);
    }

    #[test]
    fn windowed_durable_session_recovers_watermark() {
        let schema = Schema::parse("zipcode,city");
        let dir = durable_dir("window");
        let opts = || SessionOptions {
            window: Some(WindowSpec::tumbling(3).unwrap()),
            ..Default::default()
        };
        let mut s = Session::open_durable(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            &base_table(&schema),
            opts(),
            DurabilityOptions::new(&dir).snapshot_every(1),
        )
        .unwrap();
        s.apply(DeltaBatch::new().insert(10, vec![Value::Int(3), Value::str("CH")]))
            .unwrap();
        assert_eq!(s.watermark(), Some(2));
        drop(s);

        // window spec must match the snapshot
        let err = err_of(Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            SessionOptions::default(),
            DurabilityOptions::new(&dir),
        ));
        assert!(err.to_string().contains("window mismatch"), "{err}");

        let (mut s, _) = Session::recover(
            Executor::new(Engine::sequential()),
            fd_rules(&schema),
            opts(),
            DurabilityOptions::new(&dir),
        )
        .unwrap();
        assert_eq!(s.watermark(), Some(2));
        assert_eq!(s.window_live(), Some(3));
        // the very next arrival closes [0,3): recovery resumed the clock
        let r = s
            .apply(DeltaBatch::new().insert(11, vec![Value::Int(4), Value::str("SE")]))
            .unwrap();
        assert_eq!(r.tuples_expired, 3);
        assert_eq!(s.window_live(), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
