//! Bleach-style violation windows for streaming sessions.
//!
//! *Bleach: A Distributed Stream Data Cleaning System* scopes violation
//! detection to a sliding window over the record stream: a violation
//! only matters while every contributing record is still inside some
//! live window, and closing a window *retracts* the violations it
//! carried. This module defines the window geometry; the mechanics live
//! in [`crate::Session`], which assigns each arriving record a logical
//! event time (its arrival ordinal — deterministic, so WAL replay
//! reproduces the exact same expirations) and, after every applied
//! batch, retires the tuples whose last containing window closed. The
//! retired tuples leave through the ordinary delete path, so their
//! violations are retracted via the same provenance indexes that serve
//! explicit deletes.
//!
//! Windows start at multiples of `slide` and span `size` events. A
//! record with event time `ts` belongs to every window `[k·slide,
//! k·slide + size)` containing `ts`; the *last* of those starts at
//! `⌊ts/slide⌋·slide`. Once the watermark (the highest event time seen)
//! reaches the end of that last window, the record can never appear in
//! a live window again and is expired. `slide == size` gives tumbling
//! windows, `slide < size` sliding ones.

use bigdansing_common::{Error, Result};

/// Geometry of a violation window, counted in logical events
/// (arrival ordinals), not wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window length in events (≥ 1).
    pub size: u64,
    /// Distance between consecutive window starts, `1 ≤ slide ≤ size`.
    pub slide: u64,
}

impl WindowSpec {
    /// A tumbling window: consecutive, non-overlapping spans of `size`
    /// events.
    pub fn tumbling(size: u64) -> Result<WindowSpec> {
        WindowSpec::sliding(size, size)
    }

    /// A sliding window of `size` events advancing by `slide`.
    pub fn sliding(size: u64, slide: u64) -> Result<WindowSpec> {
        if size == 0 {
            return Err(Error::Parse("window size must be ≥ 1".into()));
        }
        if slide == 0 || slide > size {
            return Err(Error::Parse(format!(
                "window slide must be in 1..={size}, got {slide}"
            )));
        }
        Ok(WindowSpec { size, slide })
    }

    /// True when the window tumbles (`slide == size`).
    pub fn is_tumbling(&self) -> bool {
        self.slide == self.size
    }

    /// True when the record with event time `ts` is outside every
    /// window that is still live at `watermark` (the highest event time
    /// assigned so far): its last containing window — the one starting
    /// at `⌊ts/slide⌋·slide` — has closed.
    pub fn expired(&self, ts: u64, watermark: u64) -> bool {
        let last_start = (ts / self.slide) * self.slide;
        watermark >= last_start.saturating_add(self.size)
    }

    /// Parse `"SIZE"` (tumbling) or `"SIZE:SLIDE"` (sliding), e.g.
    /// `"1000"` or `"1000:250"` — the CLI `--window` syntax.
    pub fn parse(s: &str) -> Result<WindowSpec> {
        let bad = || {
            Error::Parse(format!(
                "invalid window spec `{s}`: want SIZE or SIZE:SLIDE"
            ))
        };
        match s.split_once(':') {
            None => WindowSpec::tumbling(s.trim().parse().map_err(|_| bad())?),
            Some((size, slide)) => WindowSpec::sliding(
                size.trim().parse().map_err(|_| bad())?,
                slide.trim().parse().map_err(|_| bad())?,
            ),
        }
    }
}

impl std::fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_tumbling() {
            write!(f, "tumbling({})", self.size)
        } else {
            write!(f, "sliding({}:{})", self.size, self.slide)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate_geometry() {
        assert!(WindowSpec::tumbling(0).is_err());
        assert!(WindowSpec::sliding(4, 0).is_err());
        assert!(WindowSpec::sliding(4, 5).is_err());
        let w = WindowSpec::sliding(4, 2).unwrap();
        assert!(!w.is_tumbling());
        assert!(WindowSpec::tumbling(4).unwrap().is_tumbling());
    }

    #[test]
    fn tumbling_expires_whole_windows() {
        let w = WindowSpec::tumbling(4).unwrap();
        // Window [0,4) closes when the watermark reaches 4.
        for ts in 0..4 {
            assert!(!w.expired(ts, 3), "ts {ts} live at wm 3");
            assert!(w.expired(ts, 4), "ts {ts} expired at wm 4");
        }
        assert!(!w.expired(4, 4));
        assert!(!w.expired(7, 7));
        assert!(w.expired(7, 8));
    }

    #[test]
    fn sliding_keeps_a_trailing_span() {
        let w = WindowSpec::sliding(4, 2).unwrap();
        // ts=3's last window is [2,6): closes at wm 6.
        assert!(!w.expired(3, 5));
        assert!(w.expired(3, 6));
        // At wm 7 the live set is {4..7}.
        let live: Vec<u64> = (0..=7).filter(|&ts| !w.expired(ts, 7)).collect();
        assert_eq!(live, vec![4, 5, 6, 7]);
        // At wm 8 it contracts to {6,7,8} (window [6,10) alone is open).
        let live: Vec<u64> = (0..=8).filter(|&ts| !w.expired(ts, 8)).collect();
        assert_eq!(live, vec![6, 7, 8]);
    }

    #[test]
    fn parse_round_trips_cli_syntax() {
        assert_eq!(
            WindowSpec::parse("16").unwrap(),
            WindowSpec::tumbling(16).unwrap()
        );
        assert_eq!(
            WindowSpec::parse("16:4").unwrap(),
            WindowSpec::sliding(16, 4).unwrap()
        );
        assert!(WindowSpec::parse("x").is_err());
        assert!(WindowSpec::parse("4:8").is_err());
        assert_eq!(
            WindowSpec::parse("16:4").unwrap().to_string(),
            "sliding(16:4)"
        );
    }
}
