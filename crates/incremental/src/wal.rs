//! Durability layer for incremental sessions: a write-ahead log of
//! [`DeltaBatch`]es plus atomic, checksummed snapshots of full session
//! state.
//!
//! Both artifacts live in one *durable directory* and share the
//! self-describing frame codec from `bigdansing_common::codec`
//! (magic, format version, kind byte, CRC32 trailer):
//!
//! ```text
//! <dir>/wal.log       frame(KIND_WAL) per batch: seq u64 + DeltaBatch
//! <dir>/snapshot.bin  one frame(KIND_SNAPSHOT): full SessionState
//! ```
//!
//! The WAL is append-only and fsync'd before any in-memory mutation;
//! a torn tail (partial last frame after a crash) is detected by the
//! frame CRC and truncated away on open. Snapshots are written to a
//! temp sibling, fsync'd, then renamed into place, so a crash leaves
//! either the old snapshot or the new one — never a hybrid. Recovery
//! is: load the newest valid snapshot, then replay the WAL suffix
//! whose sequence numbers exceed the snapshot watermark.

use crate::delta::{DeltaBatch, DeltaOp};
use bigdansing_common::codec::{
    decode_frame, encode_frame, read_frame_file, Codec, FRAME_HEADER, FRAME_TRAILER,
};
use bigdansing_common::{Error, Result, Schema, Table, Tuple, Value};
use bigdansing_dataflow::dio::{crash_hit, crash_point, Dio};
use bigdansing_dataflow::FaultSite;
use bigdansing_rules::{Fix, Violation};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame kind for WAL records.
pub const KIND_WAL: u8 = 1;
/// Frame kind for session snapshots.
pub const KIND_SNAPSHOT: u8 = 2;

/// WAL file name inside a durable directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Where and how often a session persists its state.
#[derive(Clone, Debug)]
pub struct DurabilityOptions {
    /// Directory holding `wal.log` and `snapshot.bin` (created if
    /// missing).
    pub dir: PathBuf,
    /// Write a snapshot (and truncate the WAL) every this many applied
    /// batches. `0` disables automatic snapshots; explicit
    /// `Session::snapshot()` calls still work.
    pub snapshot_every: u64,
}

impl DurabilityOptions {
    /// Durability rooted at `dir` with the default snapshot cadence
    /// (every 8 batches).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            dir: dir.into(),
            snapshot_every: 8,
        }
    }

    /// Override the automatic snapshot cadence.
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }
}

/// What recovery found and did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverStats {
    /// Sequence number covered by the snapshot that seeded recovery
    /// (0 when no snapshot existed and the session was rebuilt from
    /// the base table + full WAL).
    pub snapshot_seq: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: u64,
    /// Highest batch sequence number in the recovered session.
    pub last_seq: u64,
}

// --- delta codecs -------------------------------------------------------

impl Codec for DeltaOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            DeltaOp::Insert(t) => {
                buf.push(0);
                t.encode(buf);
            }
            DeltaOp::Update(t) => {
                buf.push(1);
                t.encode(buf);
            }
            DeltaOp::Delete(id) => {
                buf.push(2);
                id.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let tag = *buf
            .first()
            .ok_or_else(|| Error::Parse("delta op codec underrun".into()))?;
        *buf = &buf[1..];
        Ok(match tag {
            0 => DeltaOp::Insert(Tuple::decode(buf)?),
            1 => DeltaOp::Update(Tuple::decode(buf)?),
            2 => DeltaOp::Delete(u64::decode(buf)?),
            t => return Err(Error::Parse(format!("delta op codec: bad tag {t}"))),
        })
    }
}

impl Codec for DeltaBatch {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.ops.len() as u64).encode(buf);
        for op in &self.ops {
            op.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let n = u64::decode(buf)? as usize;
        let mut ops = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            ops.push(DeltaOp::decode(buf)?);
        }
        Ok(DeltaBatch { ops })
    }
}

// --- write-ahead log ----------------------------------------------------

/// Append-only, fsync'd log of applied delta batches.
pub struct Wal {
    path: PathBuf,
    file: File,
}

/// Path of the WAL file inside `dir`.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// Path of the snapshot file inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

impl Wal {
    /// Create (or truncate) the WAL in `dir`.
    pub fn create(dir: &Path) -> Result<Wal> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("create durable dir {}: {e}", dir.display())))?;
        let path = wal_path(dir);
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| Error::Io(format!("create {}: {e}", path.display())))?;
        Ok(Wal { path, file })
    }

    /// Open the WAL in `dir`, returning the valid records in order. A
    /// torn tail — any suffix that fails frame decoding, e.g. a
    /// half-written record from a crash mid-append — is truncated away
    /// so subsequent appends start at a clean record boundary. A
    /// missing file is treated as an empty log.
    pub fn open(dir: &Path) -> Result<(Wal, Vec<(u64, DeltaBatch)>)> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Io(format!("create durable dir {}: {e}", dir.display())))?;
        let path = wal_path(dir);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false) // existing records are replayed, not discarded
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::Io(format!("open {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| Error::Io(format!("read {}: {e}", path.display())))?;

        let mut records = Vec::new();
        let mut cursor = &bytes[..];
        let mut good = 0u64; // byte offset of the first bad/torn frame
        while !cursor.is_empty() {
            let before = cursor.len();
            match decode_frame(&mut cursor) {
                Ok((KIND_WAL, payload)) => {
                    let mut p = &payload[..];
                    let seq = u64::decode(&mut p)?;
                    let batch = DeltaBatch::decode(&mut p)?;
                    if !p.is_empty() {
                        return Err(Error::Corrupt(format!(
                            "{}: {} trailing byte(s) inside WAL record {seq}",
                            path.display(),
                            p.len()
                        )));
                    }
                    records.push((seq, batch));
                    good += (before - cursor.len()) as u64;
                }
                Ok((kind, _)) => {
                    return Err(Error::Corrupt(format!(
                        "{}: unexpected frame kind {kind} in WAL",
                        path.display()
                    )));
                }
                Err(_) => break, // torn tail: keep `good`, drop the rest
            }
        }
        if good < bytes.len() as u64 {
            file.set_len(good)
                .map_err(|e| Error::Io(format!("truncate torn tail {}: {e}", path.display())))?;
            file.sync_data()
                .map_err(|e| Error::Io(format!("sync {}: {e}", path.display())))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| Error::Io(format!("seek {}: {e}", path.display())))?;
        Ok((Wal { path, file }, records))
    }

    /// Append one batch under sequence number `seq` and fsync before
    /// returning. Transient IO faults are retried by `dio` with the
    /// partial write rolled back, so the log only ever grows by whole
    /// frames. Fires the `wal-pre-sync` crash point (simulating a torn
    /// write: half the frame reaches disk) and `wal-post-sync` (record
    /// durable, in-memory state not yet mutated).
    pub fn append(&mut self, seq: u64, batch: &DeltaBatch, dio: &Dio) -> Result<()> {
        let mut payload = Vec::new();
        seq.encode(&mut payload);
        batch.encode(&mut payload);
        let frame = encode_frame(KIND_WAL, &payload);

        if crash_hit("wal-pre-sync") {
            // Simulate a crash mid-append: half the frame reaches the
            // disk, then the process dies. Recovery must truncate it.
            // (`crash_hit` already consumed the configured hit, so
            // abort directly rather than via `crash_point`.)
            let half = &frame[..frame.len() / 2];
            let _ = self.file.write_all(half);
            let _ = self.file.sync_data();
            std::process::abort();
        }

        dio.append_sync(FaultSite::WalAppend, seq, &mut self.file, &frame)?;
        crash_point("wal-post-sync");
        Ok(())
    }

    /// Drop all records (after a snapshot made them redundant).
    pub fn truncate_all(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| Error::Io(format!("truncate {}: {e}", self.path.display())))?;
        self.file
            .sync_data()
            .map_err(|e| Error::Io(format!("sync {}: {e}", self.path.display())))?;
        self.file
            .seek(SeekFrom::End(0))
            .map_err(|e| Error::Io(format!("seek {}: {e}", self.path.display())))?;
        Ok(())
    }

    /// Expected size in bytes of one appended record for `batch`.
    pub fn record_size(batch: &DeltaBatch) -> usize {
        let mut payload = Vec::new();
        0u64.encode(&mut payload);
        batch.encode(&mut payload);
        FRAME_HEADER + payload.len() + FRAME_TRAILER
    }
}

// --- snapshot state -----------------------------------------------------

/// Serialized provenance of a stored violation.
#[derive(Clone, Debug, PartialEq)]
pub enum ProvState {
    /// Violation derived from these tuple ids.
    Tuples(Vec<u64>),
    /// Violation derived from the block with this key.
    Block(Vec<Value>),
}

impl Codec for ProvState {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProvState::Tuples(ids) => {
                buf.push(0);
                (ids.len() as u64).encode(buf);
                for id in ids {
                    id.encode(buf);
                }
            }
            ProvState::Block(vals) => {
                buf.push(1);
                (vals.len() as u64).encode(buf);
                for v in vals {
                    v.encode(buf);
                }
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let tag = *buf
            .first()
            .ok_or_else(|| Error::Parse("prov codec underrun".into()))?;
        *buf = &buf[1..];
        let n = u64::decode(buf)? as usize;
        Ok(match tag {
            0 => {
                let mut ids = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    ids.push(u64::decode(buf)?);
                }
                ProvState::Tuples(ids)
            }
            1 => {
                let mut vals = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    vals.push(Value::decode(buf)?);
                }
                ProvState::Block(vals)
            }
            t => return Err(Error::Parse(format!("prov codec: bad tag {t}"))),
        })
    }
}

/// One stored violation with its repair context and provenance.
#[derive(Clone, Debug)]
pub struct StoredState {
    /// Store id (preserved across snapshot/recover so retraction sets
    /// stay aligned).
    pub id: u64,
    /// Index of the originating rule in the session's rule list.
    pub rule: u64,
    /// The violation itself.
    pub violation: Violation,
    /// Possible fixes generated for it.
    pub fixes: Vec<Fix>,
    /// Where it came from (for retraction on later deltas).
    pub prov: ProvState,
}

impl Codec for StoredState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.rule.encode(buf);
        self.violation.encode(buf);
        (self.fixes.len() as u64).encode(buf);
        for f in &self.fixes {
            f.encode(buf);
        }
        self.prov.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let id = u64::decode(buf)?;
        let rule = u64::decode(buf)?;
        let violation = Violation::decode(buf)?;
        let n = u64::decode(buf)? as usize;
        let mut fixes = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            fixes.push(Fix::decode(buf)?);
        }
        let prov = ProvState::decode(buf)?;
        Ok(StoredState {
            id,
            rule,
            violation,
            fixes,
            prov,
        })
    }
}

/// Complete serializable session state. Per-rule scoping indexes are
/// *not* stored — they are rebuilt deterministically from the table
/// and sequence numbers on recovery, which keeps the snapshot small
/// and the format stable across index-layout changes.
#[derive(Clone, Debug)]
pub struct SessionState {
    /// Materialized table name.
    pub table_name: String,
    /// Schema attribute names.
    pub attrs: Vec<String>,
    /// Tuples in table order.
    pub tuples: Vec<Tuple>,
    /// Ingestion sequence number per tuple, aligned with `tuples`.
    pub seqs: Vec<u64>,
    /// Next ingestion sequence number.
    pub next_seq: u64,
    /// Batches applied so far.
    pub applies: u64,
    /// Whether the last repair pass converged.
    pub stable: bool,
    /// Highest WAL batch sequence number covered by this snapshot.
    pub last_seq: u64,
    /// Rule names at snapshot time, order-sensitive; recovery refuses
    /// a mismatched rule set.
    pub rule_names: Vec<String>,
    /// Violation store id counter.
    pub store_next: u64,
    /// Live violations.
    pub items: Vec<StoredState>,
    /// Violation-window state, for windowed sessions: geometry, logical
    /// clock, and per-tuple event times aligned with `tuples`.
    pub window: Option<WindowState>,
}

/// Serialized violation-window state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowState {
    /// Window length in events.
    pub size: u64,
    /// Distance between window starts.
    pub slide: u64,
    /// Next event time to assign (the watermark is `clock - 1`).
    pub clock: u64,
    /// Event time per live tuple, aligned with `SessionState::tuples`.
    pub times: Vec<u64>,
}

fn encode_bool(b: bool, buf: &mut Vec<u8>) {
    buf.push(b as u8);
}

fn decode_bool(buf: &mut &[u8]) -> Result<bool> {
    let b = *buf
        .first()
        .ok_or_else(|| Error::Parse("bool codec underrun".into()))?;
    *buf = &buf[1..];
    match b {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(Error::Parse(format!("bool codec: bad byte {t}"))),
    }
}

impl Codec for SessionState {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.table_name.encode(buf);
        (self.attrs.len() as u64).encode(buf);
        for a in &self.attrs {
            a.encode(buf);
        }
        (self.tuples.len() as u64).encode(buf);
        for t in &self.tuples {
            t.encode(buf);
        }
        (self.seqs.len() as u64).encode(buf);
        for s in &self.seqs {
            s.encode(buf);
        }
        self.next_seq.encode(buf);
        self.applies.encode(buf);
        encode_bool(self.stable, buf);
        self.last_seq.encode(buf);
        (self.rule_names.len() as u64).encode(buf);
        for r in &self.rule_names {
            r.encode(buf);
        }
        self.store_next.encode(buf);
        (self.items.len() as u64).encode(buf);
        for it in &self.items {
            it.encode(buf);
        }
        encode_bool(self.window.is_some(), buf);
        if let Some(w) = &self.window {
            w.size.encode(buf);
            w.slide.encode(buf);
            w.clock.encode(buf);
            (w.times.len() as u64).encode(buf);
            for t in &w.times {
                t.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        fn vec_of<T: Codec>(buf: &mut &[u8]) -> Result<Vec<T>> {
            let n = u64::decode(buf)? as usize;
            let mut out = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                out.push(T::decode(buf)?);
            }
            Ok(out)
        }
        let table_name = String::decode(buf)?;
        let attrs = vec_of::<String>(buf)?;
        let tuples = vec_of::<Tuple>(buf)?;
        let seqs = vec_of::<u64>(buf)?;
        let next_seq = u64::decode(buf)?;
        let applies = u64::decode(buf)?;
        let stable = decode_bool(buf)?;
        let last_seq = u64::decode(buf)?;
        let rule_names = vec_of::<String>(buf)?;
        let store_next = u64::decode(buf)?;
        let items = vec_of::<StoredState>(buf)?;
        let window = if decode_bool(buf)? {
            let size = u64::decode(buf)?;
            let slide = u64::decode(buf)?;
            let clock = u64::decode(buf)?;
            let times = vec_of::<u64>(buf)?;
            if times.len() != tuples.len() {
                return Err(Error::Corrupt(format!(
                    "snapshot: {} window event times for {} tuples",
                    times.len(),
                    tuples.len()
                )));
            }
            Some(WindowState {
                size,
                slide,
                clock,
                times,
            })
        } else {
            None
        };
        if seqs.len() != tuples.len() {
            return Err(Error::Corrupt(format!(
                "snapshot: {} seqs for {} tuples",
                seqs.len(),
                tuples.len()
            )));
        }
        Ok(SessionState {
            table_name,
            attrs,
            tuples,
            seqs,
            next_seq,
            applies,
            stable,
            last_seq,
            rule_names,
            store_next,
            items,
            window,
        })
    }
}

impl SessionState {
    /// Rebuild the materialized table from the snapshot fields.
    pub fn table(&self) -> Table {
        Table::new(
            self.table_name.clone(),
            Schema::new(&self.attrs),
            self.tuples.clone(),
        )
    }
}

/// Write `state` as the durable snapshot for `dir`: encode one
/// checksummed frame, write to a temp sibling, fsync, rename. Fires
/// the `snapshot-pre-rename` crash point between fsync and rename.
pub fn write_snapshot(dir: &Path, state: &SessionState, dio: &Dio) -> Result<()> {
    let mut payload = Vec::new();
    state.encode(&mut payload);
    let frame = encode_frame(KIND_SNAPSHOT, &payload);
    dio.write_atomic(
        FaultSite::SnapshotWrite,
        state.last_seq,
        &snapshot_path(dir),
        &frame,
        "snapshot",
    )
}

/// Read the snapshot in `dir`, or `None` when no snapshot exists yet.
/// Corruption (bad CRC, wrong kind, trailing bytes) and
/// newer-than-supported format versions surface as [`Error::Corrupt`].
pub fn read_snapshot(dir: &Path) -> Result<Option<SessionState>> {
    let path = snapshot_path(dir);
    if !path.exists() {
        return Ok(None);
    }
    let (kind, payload) = read_frame_file(&path)?;
    if kind != KIND_SNAPSHOT {
        return Err(Error::Corrupt(format!(
            "{}: frame kind {kind} is not a snapshot",
            path.display()
        )));
    }
    let mut p = &payload[..];
    let state = SessionState::decode(&mut p)?;
    if !p.is_empty() {
        return Err(Error::Corrupt(format!(
            "{}: {} trailing byte(s) after snapshot state",
            path.display(),
            p.len()
        )));
    }
    Ok(Some(state))
}

/// Read just the materialized table out of the snapshot in `dir`.
/// Used by the CLI `recover` subcommand to learn the schema before
/// constructing rules.
pub fn read_snapshot_table(dir: &Path) -> Result<Table> {
    match read_snapshot(dir)? {
        Some(state) => Ok(state.table()),
        None => Err(Error::Io(format!(
            "{}: no snapshot found",
            snapshot_path(dir).display()
        ))),
    }
}

/// Remove stray temp files (crash leftovers) from a durable directory.
/// Returns how many were removed.
pub fn sweep_dir(dir: &Path) -> usize {
    bigdansing_dataflow::dio::sweep_orphan_tmps(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_common::codec::{encode_frame_versioned, FORMAT_VERSION};
    use bigdansing_dataflow::FaultInjector;

    fn tdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bd-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn batch(n: u64) -> DeltaBatch {
        let b = DeltaBatch::new().insert(n, vec![Value::Int(n as i64), Value::str("x")]);
        if n.is_multiple_of(2) {
            b.update(n, vec![Value::Int(n as i64 + 1), Value::str("y")])
        } else {
            b
        }
    }

    #[test]
    fn delta_codec_roundtrip() {
        let b = batch(4).delete(9);
        let mut buf = Vec::new();
        b.encode(&mut buf);
        let back = DeltaBatch::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(back.ops.len(), b.ops.len());
        let mut buf2 = Vec::new();
        back.encode(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn wal_append_and_replay() {
        let dir = tdir("replay");
        let dio = Dio::plain();
        let mut wal = Wal::create(&dir).unwrap();
        for seq in 1..=5u64 {
            wal.append(seq, &batch(seq), &dio).unwrap();
        }
        drop(wal);
        let (_wal, records) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 5);
        for (i, (seq, b)) in records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(b.ops.len(), batch(*seq).ops.len());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tdir("torn");
        let dio = Dio::plain();
        let mut wal = Wal::create(&dir).unwrap();
        for seq in 1..=3u64 {
            wal.append(seq, &batch(seq), &dio).unwrap();
        }
        drop(wal);
        // Simulate a crash mid-append: append half of a 4th record.
        let mut payload = Vec::new();
        4u64.encode(&mut payload);
        batch(4).encode(&mut payload);
        let frame = encode_frame(KIND_WAL, &payload);
        let full = std::fs::read(wal_path(&dir)).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(wal_path(&dir), &torn).unwrap();

        let (mut wal, records) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 3, "torn record dropped");
        assert_eq!(
            std::fs::metadata(wal_path(&dir)).unwrap().len(),
            full.len() as u64,
            "file truncated back to the last whole frame"
        );
        // Appends after truncation land on a clean boundary.
        wal.append(4, &batch(4), &dio).unwrap();
        drop(wal);
        let (_w, records) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_is_rejected_at_tail() {
        // A flipped byte in the middle record makes that frame (and
        // everything after) untrusted: open keeps only the prefix.
        let dir = tdir("midflip");
        let dio = Dio::plain();
        let mut wal = Wal::create(&dir).unwrap();
        let mut offsets = Vec::new();
        for seq in 1..=3u64 {
            let mut payload = Vec::new();
            seq.encode(&mut payload);
            batch(seq).encode(&mut payload);
            offsets.push(encode_frame(KIND_WAL, &payload).len());
            wal.append(seq, &batch(seq), &dio).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(wal_path(&dir)).unwrap();
        let second_start = offsets[0];
        bytes[second_start + FRAME_HEADER + 2] ^= 0xFF;
        std::fs::write(wal_path(&dir), &bytes).unwrap();
        let (_w, records) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 1, "only the record before the flip survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_append_retries_transient_faults() {
        let dir = tdir("retry");
        let injector = FaultInjector::seeded(7).with_io_fail_once();
        let dio = Dio::plain().with_injector(injector);
        let mut wal = Wal::create(&dir).unwrap();
        for seq in 1..=4u64 {
            wal.append(seq, &batch(seq), &dio).unwrap();
        }
        assert!(dio.metrics().snapshot().io_retries >= 1);
        drop(wal);
        let (_w, records) = Wal::open(&dir).unwrap();
        assert_eq!(records.len(), 4, "retried appends leave whole frames only");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn state() -> SessionState {
        SessionState {
            table_name: "t".into(),
            attrs: vec!["id".into(), "city".into()],
            tuples: vec![
                Tuple::new(0, vec![Value::Int(1), Value::str("LA")]),
                Tuple::new(1, vec![Value::Int(2), Value::str("SF")]),
            ],
            seqs: vec![1, 2],
            next_seq: 3,
            applies: 2,
            stable: true,
            last_seq: 2,
            rule_names: vec!["fd:zip->city".into()],
            store_next: 5,
            items: vec![StoredState {
                id: 4,
                rule: 0,
                violation: Violation::new("fd:zip->city")
                    .with_cell(bigdansing_common::Cell::new(0, 1), Value::str("LA")),
                fixes: vec![Fix::assign_const(
                    bigdansing_common::Cell::new(0, 1),
                    Value::str("LA"),
                    Value::str("SF"),
                )],
                prov: ProvState::Block(vec![Value::str("90001")]),
            }],
            window: None,
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = tdir("snap");
        let dio = Dio::plain();
        let st = state();
        write_snapshot(&dir, &st, &dio).unwrap();
        let back = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back.table_name, st.table_name);
        assert_eq!(back.tuples, st.tuples);
        assert_eq!(back.seqs, st.seqs);
        assert_eq!(back.last_seq, st.last_seq);
        assert_eq!(back.rule_names, st.rule_names);
        assert_eq!(back.items.len(), 1);
        assert_eq!(back.items[0].id, 4);
        assert_eq!(back.items[0].prov, st.items[0].prov);
        let table = read_snapshot_table(&dir).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema().attrs(), ["id", "city"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn windowed_snapshot_roundtrip() {
        let dir = tdir("snapwin");
        let dio = Dio::plain();
        let mut st = state();
        st.window = Some(WindowState {
            size: 8,
            slide: 2,
            clock: 11,
            times: vec![9, 10],
        });
        write_snapshot(&dir, &st, &dio).unwrap();
        let back = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back.window, st.window);
        // Misaligned event times are corruption, not a silent truncation.
        st.window.as_mut().unwrap().times.push(12);
        let mut payload = Vec::new();
        st.encode(&mut payload);
        std::fs::write(snapshot_path(&dir), encode_frame(KIND_SNAPSHOT, &payload)).unwrap();
        match read_snapshot(&dir) {
            Err(Error::Corrupt(msg)) => assert!(msg.contains("window event times"), "{msg}"),
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_corruption_detected() {
        let dir = tdir("snapbad");
        let dio = Dio::plain();
        write_snapshot(&dir, &state(), &dio).unwrap();
        let mut bytes = std::fs::read(snapshot_path(&dir)).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(snapshot_path(&dir), &bytes).unwrap();
        match read_snapshot(&dir) {
            Err(Error::Corrupt(_)) | Err(Error::Parse(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_version_too_new_rejected() {
        let dir = tdir("snapver");
        let mut payload = Vec::new();
        state().encode(&mut payload);
        let frame = encode_frame_versioned(KIND_SNAPSHOT, FORMAT_VERSION + 1, &payload);
        std::fs::write(snapshot_path(&dir), &frame).unwrap();
        match read_snapshot(&dir) {
            Err(Error::Corrupt(msg)) => assert!(msg.contains("version"), "msg: {msg}"),
            other => panic!("expected version rejection, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = tdir("snapnone");
        assert!(read_snapshot(&dir).unwrap().is_none());
        assert!(read_snapshot_table(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
