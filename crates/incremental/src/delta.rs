//! Delta batches: the unit of change a [`crate::Session`] consumes.
//!
//! A batch is an ordered list of inserts, updates, and deletes. The CSV
//! form mirrors the base-table parser with two leading columns:
//!
//! ```csv
//! op,id,zipcode,city
//! insert,4,90210,LA
//! update,1,90210,SF
//! delete,2
//! ```
//!
//! `op` is `insert`/`update`/`delete` (case-insensitive), `id` is the
//! tuple id the operation targets, and the remaining fields follow the
//! base table's schema (`delete` rows may omit them). Ops apply in file
//! order, so `delete,7` followed by `insert,7,…` re-creates tuple 7 at
//! the end of the table.

use bigdansing_common::csv::split_line;
use bigdansing_common::{Error, Quarantine, Result, Schema, Table, Tuple, TupleId, Value};
use std::collections::HashMap;
use std::path::Path;

/// One change to the base table.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Add a tuple whose id must not be present.
    Insert(Tuple),
    /// Replace the values of an existing tuple (same id, same position).
    Update(Tuple),
    /// Remove an existing tuple.
    Delete(TupleId),
}

impl DeltaOp {
    /// The tuple id this op targets.
    pub fn id(&self) -> TupleId {
        match self {
            DeltaOp::Insert(t) | DeltaOp::Update(t) => t.id(),
            DeltaOp::Delete(id) => *id,
        }
    }
}

/// An ordered batch of [`DeltaOp`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// The operations, in application order.
    pub ops: Vec<DeltaOp>,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> DeltaBatch {
        DeltaBatch::default()
    }

    /// Append an insert.
    pub fn insert(mut self, id: TupleId, values: Vec<Value>) -> DeltaBatch {
        self.ops.push(DeltaOp::Insert(Tuple::new(id, values)));
        self
    }

    /// Append an update.
    pub fn update(mut self, id: TupleId, values: Vec<Value>) -> DeltaBatch {
        self.ops.push(DeltaOp::Update(Tuple::new(id, values)));
        self
    }

    /// Append a delete.
    pub fn delete(mut self, id: TupleId) -> DeltaBatch {
        self.ops.push(DeltaOp::Delete(id));
        self
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parse the CSV delta format described in the module docs. A
    /// leading `op,id,…` header line is skipped when present.
    pub fn parse_str(text: &str, schema: &Schema) -> Result<DeltaBatch> {
        let mut ops = Vec::new();
        let mut first = true;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            // The header is the first non-empty line (blank lines above
            // it don't make it data).
            let head = std::mem::take(&mut first);
            if head && is_header(line) {
                continue;
            }
            match parse_delta_line(line, schema) {
                Ok(op) => ops.push(op),
                Err(reason) => return Err(Error::Parse(format!("delta line {}: {reason}", i + 1))),
            }
        }
        Ok(DeltaBatch { ops })
    }

    /// Lenient variant of [`DeltaBatch::parse_str`]: malformed lines are
    /// diverted into a [`Quarantine`] report (keyed by 1-based line
    /// number) instead of failing the whole batch — the streamed-ingest
    /// counterpart of the lenient CSV file parser. The well-formed ops
    /// are returned in input order.
    pub fn parse_str_lenient(
        text: &str,
        schema: &Schema,
        source: impl Into<String>,
    ) -> (DeltaBatch, Quarantine) {
        let mut ops = Vec::new();
        let mut quarantine = Quarantine::new(source);
        let mut first = true;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let head = std::mem::take(&mut first);
            if head && is_header(line) {
                continue;
            }
            match parse_delta_line(line, schema) {
                Ok(op) => ops.push(op),
                Err(reason) => quarantine.push(i + 1, reason),
            }
        }
        (DeltaBatch { ops }, quarantine)
    }

    /// Read a delta CSV file from disk.
    pub fn read_file(path: impl AsRef<Path>, schema: &Schema) -> Result<DeltaBatch> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| Error::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::parse_str(&text, schema)
    }
}

fn is_header(line: &str) -> bool {
    split_line(line)[0].trim().eq_ignore_ascii_case("op")
}

/// Parse one non-header CSV delta line. Errors carry the reason only;
/// callers prepend the line number (strict mode) or quarantine it.
fn parse_delta_line(line: &str, schema: &Schema) -> std::result::Result<DeltaOp, String> {
    let fields = split_line(line);
    if fields.len() < 2 {
        return Err("expected `op,id,…`".into());
    }
    let op = fields[0].trim().to_ascii_lowercase();
    let id: TupleId = fields[1]
        .trim()
        .parse()
        .map_err(|_| format!("invalid tuple id `{}`", fields[1]))?;
    let values = || -> std::result::Result<Vec<Value>, String> {
        let cols = &fields[2..];
        if cols.len() != schema.arity() {
            return Err(format!(
                "expected {} value fields, found {}",
                schema.arity(),
                cols.len()
            ));
        }
        Ok(cols.iter().map(|f| Value::parse_lossy(f)).collect())
    };
    Ok(match op.as_str() {
        "insert" => DeltaOp::Insert(Tuple::new(id, values()?)),
        "update" => DeltaOp::Update(Tuple::new(id, values()?)),
        "delete" => DeltaOp::Delete(id),
        other => return Err(format!("unknown op `{other}`")),
    })
}

/// Materialize `batch` against `table`: deletes remove the row, updates
/// replace values in place (the tuple keeps its position), inserts
/// append at the end in batch order. This is the from-scratch oracle
/// the incremental [`crate::Session`] must agree with.
pub fn apply_batch_to_table(table: &Table, batch: &DeltaBatch) -> Result<Table> {
    let mut tuples: Vec<Option<Tuple>> = table.tuples().iter().cloned().map(Some).collect();
    let mut pos: HashMap<TupleId, usize> = table
        .tuples()
        .iter()
        .enumerate()
        .map(|(i, t)| (t.id(), i))
        .collect();
    for op in &batch.ops {
        match op {
            DeltaOp::Insert(t) => {
                if pos.contains_key(&t.id()) {
                    return Err(Error::Parse(format!(
                        "delta inserts tuple {} which already exists",
                        t.id()
                    )));
                }
                check_arity(table, t)?;
                pos.insert(t.id(), tuples.len());
                tuples.push(Some(t.clone()));
            }
            DeltaOp::Update(t) => {
                let idx = *pos.get(&t.id()).ok_or_else(|| {
                    Error::Parse(format!("delta updates missing tuple {}", t.id()))
                })?;
                check_arity(table, t)?;
                tuples[idx] = Some(t.clone());
            }
            DeltaOp::Delete(id) => {
                let idx = pos
                    .remove(id)
                    .ok_or_else(|| Error::Parse(format!("delta deletes missing tuple {id}")))?;
                tuples[idx] = None;
            }
        }
    }
    Ok(Table::new(
        table.name().to_string(),
        table.schema().clone(),
        tuples.into_iter().flatten().collect(),
    ))
}

pub(crate) fn check_arity(table: &Table, t: &Tuple) -> Result<()> {
    if t.arity() != table.schema().arity() {
        return Err(Error::Parse(format!(
            "delta tuple {} has arity {}, schema needs {}",
            t.id(),
            t.arity(),
            table.schema().arity()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Table {
        let schema = Schema::parse("zipcode,city");
        Table::from_rows(
            "t",
            schema,
            vec![
                vec![Value::Int(1), Value::str("LA")],
                vec![Value::Int(2), Value::str("NY")],
            ],
        )
    }

    #[test]
    fn parse_all_op_kinds() {
        let schema = Schema::parse("zipcode,city");
        let b = DeltaBatch::parse_str(
            "op,id,zipcode,city\ninsert,5,90210,LA\nupdate,0,10001,NY\ndelete,1\n",
            &schema,
        )
        .unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.ops[2], DeltaOp::Delete(1));
        match &b.ops[0] {
            DeltaOp::Insert(t) => assert_eq!(t.value(0), &Value::Int(90210)),
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn header_after_blank_lines_is_skipped() {
        let schema = Schema::parse("zipcode,city");
        let b =
            DeltaBatch::parse_str("\n\nop,id,zipcode,city\ninsert,5,90210,LA\n", &schema).unwrap();
        assert_eq!(b.len(), 1);
        // Only the first non-empty line can be a header.
        assert!(DeltaBatch::parse_str("insert,5,90210,LA\nop,id,zipcode,city\n", &schema).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        let schema = Schema::parse("zipcode,city");
        assert!(DeltaBatch::parse_str("upsert,1,1,LA\n", &schema).is_err());
        assert!(DeltaBatch::parse_str("insert,notanid,1,LA\n", &schema).is_err());
        assert!(DeltaBatch::parse_str("insert,1,justonefield\n", &schema).is_err());
    }

    #[test]
    fn lenient_parse_quarantines_bad_lines_keeps_good_ones() {
        let schema = Schema::parse("zipcode,city");
        let text = "op,id,zipcode,city\n\
                    insert,5,90210,LA\n\
                    upsert,6,1,NY\n\
                    insert,notanid,2,SF\n\
                    insert,7,justonefield\n\
                    delete,5\n";
        let (batch, q) = DeltaBatch::parse_str_lenient(text, &schema, "tenant-a");
        assert_eq!(batch.len(), 2, "good insert + delete survive");
        assert_eq!(batch.ops[1], DeltaOp::Delete(5));
        assert_eq!(q.len(), 3);
        assert_eq!(q.source(), "tenant-a");
        assert_eq!(q.entries()[0].0, 3, "1-based line numbers");
        assert!(q.entries()[0].1.contains("unknown op"), "{:?}", q.entries());
    }

    #[test]
    fn lenient_parse_of_clean_input_matches_strict() {
        let schema = Schema::parse("zipcode,city");
        let text = "op,id,zipcode,city\ninsert,5,90210,LA\nupdate,0,1,NY\n";
        let strict = DeltaBatch::parse_str(text, &schema).unwrap();
        let (lenient, q) = DeltaBatch::parse_str_lenient(text, &schema, "t");
        assert_eq!(strict, lenient);
        assert!(q.is_empty());
    }

    #[test]
    fn materialize_preserves_order() {
        let t = base();
        let batch = DeltaBatch::new()
            .update(0, vec![Value::Int(1), Value::str("SF")])
            .delete(1)
            .insert(7, vec![Value::Int(3), Value::str("CH")]);
        let out = apply_batch_to_table(&t, &batch).unwrap();
        let ids: Vec<_> = out.tuples().iter().map(Tuple::id).collect();
        assert_eq!(ids, vec![0, 7]);
        assert_eq!(out.tuple(0).unwrap().value(1), &Value::str("SF"));
    }

    #[test]
    fn delete_then_reinsert_moves_to_end() {
        let t = base();
        let batch = DeltaBatch::new()
            .delete(0)
            .insert(0, vec![Value::Int(9), Value::str("XX")]);
        let out = apply_batch_to_table(&t, &batch).unwrap();
        let ids: Vec<_> = out.tuples().iter().map(Tuple::id).collect();
        assert_eq!(ids, vec![1, 0]);
    }

    #[test]
    fn materialize_rejects_conflicts() {
        let t = base();
        assert!(
            apply_batch_to_table(&t, &DeltaBatch::new().insert(0, vec![])).is_err(),
            "insert of existing id"
        );
        assert!(apply_batch_to_table(
            &t,
            &DeltaBatch::new().update(9, vec![Value::Int(1), Value::str("a")])
        )
        .is_err());
        assert!(apply_batch_to_table(&t, &DeltaBatch::new().delete(9)).is_err());
    }
}
