#![warn(missing_docs)]

//! # bigdansing-incremental
//!
//! Incremental cleansing: cleanse *deltas* instead of full tables.
//!
//! The paper's pipelines are batch jobs — every detection pass rescans,
//! re-blocks, and re-joins the entire input even when only a handful of
//! tuples changed since the last run. This crate keeps a cleansing
//! [`Session`] alive across delta batches:
//!
//! * a **persistent block index** per rule (blocking-key → scoped
//!   tuples, or the partitioned sorted lists of
//!   [`bigdansing_ocjoin::OcIndex`] for inequality rules) survives
//!   between batches, so candidate generation touches only the blocks a
//!   delta dirties;
//! * a **violation store** records, for every live violation, the data
//!   units that produced it, so violations whose contributing rows were
//!   deleted or updated are *retracted* instead of recomputed;
//! * detection runs over `delta×base ∪ delta×delta` candidate units
//!   through the engine's lazy Stage API, so fused passes, fault
//!   retries, memory budgets, and cancellation all apply;
//! * re-repair is scoped: when a batch adds and retracts nothing and the
//!   previous repair ended stably, the repair loop is skipped outright,
//!   and the `components_rerepaired` metric tracks how many connected
//!   components of the violation graph the delta actually touched.
//!
//! Correctness is defined relative to an oracle: after every
//! [`Session::apply`], the session's table and violation store must
//! equal what a from-scratch `cleanse_loop` over the materialized table
//! would produce. The test suite enforces this for FDs, CFDs, DCs with
//! inequalities, and dedup UDF rules.
//!
//! Sessions can additionally be made **durable**: with
//! [`DurabilityOptions`] every applied batch is appended to a
//! checksummed write-ahead log before any in-memory mutation, periodic
//! atomic snapshots bound replay time, and [`Session::recover`]
//! rebuilds an equivalent session after a crash — or after an apply
//! error that would otherwise leave the session poisoned.
//!
//! Streaming sessions can bound their working set with a **violation
//! window** ([`WindowSpec`]): each arriving record gets a logical event
//! time, and tuples whose last containing window closed behind the
//! watermark are retired through the delete path — their violations
//! retracted via the same provenance indexes. Window state is part of
//! the durable snapshot, so recovery resumes the watermark exactly.

pub mod delta;
pub mod session;
pub mod wal;
pub mod window;

pub use delta::{apply_batch_to_table, DeltaBatch, DeltaOp};
pub use session::{DeltaReport, Session, SessionOptions};
pub use wal::{read_snapshot_table, DurabilityOptions, RecoverStats};
pub use window::WindowSpec;
