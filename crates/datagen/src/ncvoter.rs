//! The NCVoter dataset (§6.1): North Carolina voter records with 2%
//! near-duplicate rows (random edits on name and phone).

use crate::errors::inject_duplicates;
use crate::text;
use bigdansing_common::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Voter schema: `voter_id, name, phone, city, state, zipcode`.
pub fn schema() -> Schema {
    Schema::parse("voter_id,name,phone,city,state,zipcode")
}

/// Attribute indices.
pub mod attr {
    /// voter_id
    pub const VOTER_ID: usize = 0;
    /// name
    pub const NAME: usize = 1;
    /// phone
    pub const PHONE: usize = 2;
    /// city
    pub const CITY: usize = 3;
    /// state
    pub const STATE: usize = 4;
    /// zipcode
    pub const ZIPCODE: usize = 5;
}

/// Generate `rows` clean voter records.
pub fn clean(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..rows)
        .map(|i| {
            let zip = text::zipcode(&mut rng);
            let (city, _) = text::city_of_zip(zip);
            vec![
                Value::Int(i as i64),
                Value::str(text::name(&mut rng)),
                Value::str(text::phone(&mut rng)),
                Value::str(city),
                Value::str("NC"),
                Value::Int(zip),
            ]
        })
        .collect();
    Table::from_rows("ncvoter", schema(), tuples)
}

/// The ϕ5 experiment input: voters with 2% near-duplicates. Returns the
/// table and the true duplicate pairs.
pub fn ncvoter(rows: usize, seed: u64) -> (Table, Vec<(u64, u64)>) {
    let base = clean(rows, seed);
    inject_duplicates(&base, &[attr::NAME, attr::PHONE], 0.02, seed ^ 0x5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rows_plus_duplicates() {
        let (t, pairs) = ncvoter(1000, 1);
        assert_eq!(t.len(), 1000 + pairs.len());
        assert!(pairs.len() > 5, "≈20 duplicates expected");
    }

    #[test]
    fn duplicates_edit_name_or_phone_only() {
        let (t, pairs) = ncvoter(500, 2);
        for (o, d) in &pairs {
            let orig = t.tuple(*o).unwrap();
            let dup = t.tuple(*d).unwrap();
            assert_eq!(orig.value(attr::CITY), dup.value(attr::CITY));
            assert_eq!(orig.value(attr::ZIPCODE), dup.value(attr::ZIPCODE));
        }
    }

    #[test]
    fn state_is_nc() {
        let t = clean(50, 3);
        assert!(t
            .tuples()
            .iter()
            .all(|t| t.value(attr::STATE) == &Value::str("NC")));
    }
}
