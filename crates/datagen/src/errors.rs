//! Error injectors: the paper's corruption procedures.

use crate::text;
use crate::truth::GroundTruth;
use bigdansing_common::{Cell, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Corrupt `rate` (0.0–1.0) of the rows by garbling the given string
/// attributes ("we introduced errors by adding random text to attributes
/// City and State at a 10% rate").
pub fn garble_attrs(clean: &Table, attrs: &[usize], rate: f64, seed: u64) -> GroundTruth {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = HashSet::new();
    let tuples = clean
        .tuples()
        .iter()
        .map(|t| {
            if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                let attr = attrs[rng.gen_range(0..attrs.len())];
                let old = t.value(attr).to_string();
                errors.insert(Cell::new(t.id(), attr));
                t.with_value(attr, Value::str(text::garble(&mut rng, &old)))
            } else {
                t.clone()
            }
        })
        .collect();
    GroundTruth {
        clean: clean.clone(),
        dirty: Table::new(clean.name(), clean.schema().clone(), tuples),
        errors,
    }
}

/// Corrupt a numeric attribute with random perturbations (the "10%
/// numerical random errors on the Rate attribute" of TaxB).
pub fn perturb_numeric(clean: &Table, attr: usize, rate: f64, seed: u64) -> GroundTruth {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut errors = HashSet::new();
    let tuples = clean
        .tuples()
        .iter()
        .map(|t| {
            if rng.gen_bool(rate.clamp(0.0, 1.0)) {
                errors.insert(Cell::new(t.id(), attr));
                let old = t.value(attr).as_f64().unwrap_or(0.0);
                // a large multiplicative + additive perturbation so the
                // monotone salary/rate relationship visibly breaks
                let noise = rng.gen_range(-0.9..2.0);
                let new = (old * (1.0 + noise)).abs() + rng.gen_range(0.0..5.0);
                t.with_value(attr, Value::Float((new * 100.0).round() / 100.0))
            } else {
                t.clone()
            }
        })
        .collect();
    GroundTruth {
        clean: clean.clone(),
        dirty: Table::new(clean.name(), clean.schema().clone(), tuples),
        errors,
    }
}

/// Duplicate `rate` of the rows with single-character edits on the given
/// attributes (the dedup datasets: "randomly select 2% of the tuples and
/// duplicate them with random edits on name and phone").
///
/// Returns the augmented table plus the list of `(original id, duplicate
/// id)` pairs, which is the dedup ground truth.
pub fn inject_duplicates(
    table: &Table,
    edit_attrs: &[usize],
    rate: f64,
    seed: u64,
) -> (Table, Vec<(u64, u64)>) {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tuples: Vec<Tuple> = table.tuples().to_vec();
    let mut next_id = tuples.iter().map(|t| t.id()).max().unwrap_or(0) + 1;
    let mut pairs = Vec::new();
    for t in table.tuples() {
        if !rng.gen_bool(rate.clamp(0.0, 1.0)) {
            continue;
        }
        let mut values = t.to_values();
        for &attr in edit_attrs {
            if let Some(s) = values[attr].as_str() {
                values[attr] = Value::str(text::random_edit(&mut rng, s));
            }
        }
        tuples.push(Tuple::new(next_id, values));
        pairs.push((t.id(), next_id));
        next_id += 1;
    }
    (
        Table::new(table.name(), table.schema().clone(), tuples),
        pairs,
    )
}

/// Replicate every row `factor` times as exact duplicates (the paper's
/// customer1 = 3× and customer2 = 5× tables), assigning fresh ids.
pub fn replicate_exact(table: &Table, factor: usize) -> Table {
    let mut tuples = Vec::with_capacity(table.len() * factor);
    let mut next_id = 0u64;
    for t in table.tuples() {
        for _ in 0..factor.max(1) {
            tuples.push(Tuple::new(next_id, t.to_values()));
            next_id += 1;
        }
    }
    Table::new(table.name(), table.schema().clone(), tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_common::Schema;

    fn base() -> Table {
        let schema = Schema::parse("name,city");
        Table::from_rows(
            "t",
            schema,
            (0..100)
                .map(|i| vec![Value::str(format!("name{i}")), Value::str("LA")])
                .collect(),
        )
    }

    #[test]
    fn garble_rate_is_respected_and_tracked() {
        let t = base();
        let gt = garble_attrs(&t, &[1], 0.2, 42);
        assert_eq!(gt.dirty.len(), t.len());
        let diff = gt.clean.diff_cells(&gt.dirty);
        assert_eq!(diff, gt.error_count());
        assert!(diff > 5 && diff < 40, "≈20 expected, got {diff}");
        // every tracked error cell really differs
        for c in &gt.errors {
            assert_ne!(gt.clean.cell_value(*c), gt.dirty.cell_value(*c));
        }
    }

    #[test]
    fn garble_is_deterministic_per_seed() {
        let t = base();
        let a = garble_attrs(&t, &[1], 0.1, 7);
        let b = garble_attrs(&t, &[1], 0.1, 7);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.dirty.diff_cells(&b.dirty), 0);
    }

    #[test]
    fn perturb_changes_numbers_only() {
        let schema = Schema::parse("salary,rate");
        let t = Table::from_rows(
            "t",
            schema,
            (0..200)
                .map(|i| vec![Value::Int(1000 + i), Value::Float(i as f64 / 10.0)])
                .collect(),
        );
        let gt = perturb_numeric(&t, 1, 0.1, 3);
        assert!(gt.error_count() > 5);
        for c in &gt.errors {
            assert_eq!(c.attr, 1);
            assert!(gt.dirty.cell_value(*c).unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn duplicates_are_near_matches_with_fresh_ids() {
        let t = base();
        let (aug, pairs) = inject_duplicates(&t, &[0], 0.1, 11);
        assert_eq!(aug.len(), t.len() + pairs.len());
        assert!(!pairs.is_empty());
        for (orig, dup) in &pairs {
            let o = aug.tuple(*orig).unwrap();
            let d = aug.tuple(*dup).unwrap();
            let lo = o.value(0).as_str().unwrap();
            let ld = d.value(0).as_str().unwrap();
            assert!(bigdansing_common::sim::levenshtein(lo, ld) <= 1);
            assert_eq!(o.value(1), d.value(1), "unedited attrs copied");
        }
    }

    #[test]
    fn replicate_multiplies_rows() {
        let t = base();
        let r = replicate_exact(&t, 3);
        assert_eq!(r.len(), 300);
        // ids unique
        let ids: std::collections::HashSet<u64> = r.tuples().iter().map(|t| t.id()).collect();
        assert_eq!(ids.len(), 300);
    }
}
