#![warn(missing_docs)]

//! # bigdansing-datagen
//!
//! Seeded synthetic generators reproducing the datasets of the paper's
//! experimental study (§6.1, Table 2):
//!
//! | dataset | module | rules exercised |
//! |---|---|---|
//! | TaxA (US personal tax) | [`tax`] | ϕ1 `zipcode → city` (FD) |
//! | TaxB (TaxA + rate errors) | [`tax`] | ϕ2 salary/rate DC |
//! | TPCH (lineitem ⋈ customer) | [`tpch`] | ϕ3 `o_custkey → c_address` |
//! | customer1 / customer2 | [`customer`] | ϕ4 dedup UDF |
//! | NCVoter | [`ncvoter`] | ϕ5 dedup UDF |
//! | HAI (healthcare infections) | [`hai`] | ϕ6–ϕ8 FDs |
//!
//! Every generator takes an explicit seed; the *clean* table is retained
//! as [`truth::GroundTruth`] so repair quality (precision / recall /
//! distance, Table 4) can be evaluated exactly.

pub mod customer;
pub mod errors;
pub mod hai;
pub mod ncvoter;
pub mod tax;
pub mod text;
pub mod tpch;
pub mod truth;

pub use truth::GroundTruth;
