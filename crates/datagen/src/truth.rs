//! Ground truth and repair-quality metrics (Table 4 of the paper).

use bigdansing_common::{Cell, Table};
use std::collections::HashSet;

/// A dirty table plus the clean table it was derived from and the exact
/// set of corrupted cells.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The error-free table.
    pub clean: Table,
    /// The table with injected errors.
    pub dirty: Table,
    /// Cells whose values were corrupted.
    pub errors: HashSet<Cell>,
}

/// Precision / recall of a repair (Table 4's quality measures):
/// precision = correctly-updated cells / updated cells;
/// recall = correctly-updated cells / injected errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Ratio of correct updates among all updates.
    pub precision: f64,
    /// Ratio of injected errors that were correctly restored.
    pub recall: f64,
    /// Cells the repair updated.
    pub updated: usize,
    /// Updates matching the clean value exactly.
    pub correct: usize,
}

impl GroundTruth {
    /// Evaluate a repaired table against the truth.
    pub fn evaluate(&self, repaired: &Table) -> Quality {
        let mut updated = 0usize;
        let mut correct = 0usize;
        for (dirty_t, (clean_t, rep_t)) in self
            .dirty
            .tuples()
            .iter()
            .zip(self.clean.tuples().iter().zip(repaired.tuples()))
        {
            for attr in 0..dirty_t.arity() {
                let before = dirty_t.value(attr);
                let after = rep_t.value(attr);
                if before != after {
                    updated += 1;
                    if after == clean_t.value(attr) {
                        correct += 1;
                    }
                }
            }
        }
        let precision = if updated == 0 {
            1.0
        } else {
            correct as f64 / updated as f64
        };
        let recall = if self.errors.is_empty() {
            1.0
        } else {
            correct as f64 / self.errors.len() as f64
        };
        Quality {
            precision,
            recall,
            updated,
            correct,
        }
    }

    /// Mean absolute numeric distance between a repaired attribute and
    /// the truth, over the corrupted cells — the ‖R,G‖/e measure used
    /// for the hypergraph algorithm on TaxB.
    pub fn mean_numeric_distance(&self, repaired: &Table, attr: usize) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for cell in &self.errors {
            if cell.attr as usize != attr {
                continue;
            }
            let clean = self.clean.cell_value(*cell).and_then(|v| v.as_f64());
            let rep = repaired.cell_value(*cell).and_then(|v| v.as_f64());
            if let (Some(c), Some(r)) = (clean, rep) {
                total += (c - r).abs();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Injected error count.
    pub fn error_count(&self) -> usize {
        self.errors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_common::{Schema, Value};
    use std::collections::HashMap;

    fn truth() -> GroundTruth {
        let schema = Schema::parse("a,b");
        let clean = Table::from_rows(
            "t",
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
            ],
        );
        let dirty = Table::from_rows(
            "t",
            schema,
            vec![
                vec![Value::Int(1), Value::str("x!")],
                vec![Value::Int(2), Value::str("y")],
            ],
        );
        GroundTruth {
            clean,
            dirty,
            errors: HashSet::from([Cell::new(0, 1)]),
        }
    }

    #[test]
    fn perfect_repair_scores_one() {
        let t = truth();
        let mut fix = HashMap::new();
        fix.insert(Cell::new(0, 1), Value::str("x"));
        let repaired = t.dirty.apply(&fix).unwrap();
        let q = t.evaluate(&repaired);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.updated, 1);
    }

    #[test]
    fn wrong_update_hurts_precision() {
        let t = truth();
        let mut fix = HashMap::new();
        fix.insert(Cell::new(0, 1), Value::str("zzz"));
        fix.insert(Cell::new(1, 1), Value::str("wrong"));
        let repaired = t.dirty.apply(&fix).unwrap();
        let q = t.evaluate(&repaired);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.updated, 2);
    }

    #[test]
    fn no_update_has_full_precision_zero_recall() {
        let t = truth();
        let q = t.evaluate(&t.dirty);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.0);
    }

    #[test]
    fn numeric_distance() {
        let schema = Schema::parse("v");
        let clean = Table::from_rows("t", schema.clone(), vec![vec![Value::Int(10)]]);
        let dirty = Table::from_rows("t", schema, vec![vec![Value::Int(50)]]);
        let gt = GroundTruth {
            clean,
            dirty: dirty.clone(),
            errors: HashSet::from([Cell::new(0, 0)]),
        };
        assert_eq!(gt.mean_numeric_distance(&dirty, 0), 40.0);
        let mut fix = HashMap::new();
        fix.insert(Cell::new(0, 0), Value::Int(12));
        let rep = dirty.apply(&fix).unwrap();
        assert_eq!(gt.mean_numeric_distance(&rep, 0), 2.0);
        assert_eq!(gt.mean_numeric_distance(&rep, 5), 0.0);
    }
}
