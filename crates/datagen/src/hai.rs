//! The HAI dataset (§6.1): Healthcare Associated Infections — hospital
//! records with FDs ϕ6 (`Zipcode → State`), ϕ7 (`PhoneNumber →
//! Zipcode`), and ϕ8 (`ProviderID → City, PhoneNumber`), corrupted at
//! 10% on the covered attributes. "Each rule combination has its own
//! dirty dataset."

use crate::errors::garble_attrs;
use crate::text;
use crate::truth::GroundTruth;
use bigdansing_common::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// HAI schema:
/// `provider_id, hospital_name, city, state, zipcode, phone, score`.
pub fn schema() -> Schema {
    Schema::parse("provider_id,hospital_name,city,state,zipcode,phone,score")
}

/// Attribute indices.
pub mod attr {
    /// provider_id
    pub const PROVIDER_ID: usize = 0;
    /// hospital_name
    pub const HOSPITAL_NAME: usize = 1;
    /// city
    pub const CITY: usize = 2;
    /// state
    pub const STATE: usize = 3;
    /// zipcode
    pub const ZIPCODE: usize = 4;
    /// phone
    pub const PHONE: usize = 5;
    /// score
    pub const SCORE: usize = 6;
}

/// The rule combinations of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleCombo {
    /// ϕ6 only.
    Phi6,
    /// ϕ6 and ϕ7.
    Phi6And7,
    /// ϕ6, ϕ7, and ϕ8.
    Phi6To8,
}

impl RuleCombo {
    /// The FD specs of the combination, parseable against [`schema`].
    pub fn fd_specs(&self) -> Vec<&'static str> {
        match self {
            RuleCombo::Phi6 => vec!["zipcode -> state"],
            RuleCombo::Phi6And7 => vec!["zipcode -> state", "phone -> zipcode"],
            RuleCombo::Phi6To8 => vec![
                "zipcode -> state",
                "phone -> zipcode",
                "provider_id -> city, phone",
            ],
        }
    }

    /// Attributes the combination's FDs cover (error-injection targets:
    /// the paper corrupts "the attributes covered by the FDs").
    pub fn covered_attrs(&self) -> Vec<usize> {
        match self {
            RuleCombo::Phi6 => vec![attr::STATE],
            RuleCombo::Phi6And7 => vec![attr::STATE, attr::ZIPCODE],
            RuleCombo::Phi6To8 => vec![attr::STATE, attr::ZIPCODE, attr::CITY, attr::PHONE],
        }
    }
}

/// Generate `rows` clean hospital records (each provider appears several
/// times — one row per reported measure — so the FDs have real blocks).
pub fn clean(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let providers = (rows / 6 + 1).max(1);
    // provider master data, FD-consistent by construction
    let masters: Vec<(i64, String, i64)> = (0..providers)
        .map(|p| {
            let zip = text::zipcode(&mut rng);
            (p as i64 * 10 + 10_000, text::phone(&mut rng), zip)
        })
        .collect();
    let tuples = (0..rows)
        .map(|_| {
            let (pid, phone, zip) = &masters[rng.gen_range(0..providers)];
            let (city, state) = text::city_of_zip(*zip);
            vec![
                Value::Int(*pid),
                Value::str(format!("{} General Hospital", city)),
                Value::str(city),
                Value::str(state),
                Value::Int(*zip),
                Value::str(phone),
                Value::Float((rng.gen_range(0.0..10.0f64) * 10.0).round() / 10.0),
            ]
        })
        .collect();
    Table::from_rows("hai", schema(), tuples)
}

/// The Table 4 input: a fresh dirty dataset for a rule combination.
pub fn hai(rows: usize, combo: RuleCombo, error_rate: f64, seed: u64) -> GroundTruth {
    let c = clean(rows, seed);
    garble_attrs(&c, &combo.covered_attrs(), error_rate, seed ^ 0x6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_holds(t: &Table, lhs: &[usize], rhs: usize) -> bool {
        let mut seen: std::collections::HashMap<Vec<String>, String> = Default::default();
        for tup in t.tuples() {
            let key: Vec<String> = lhs.iter().map(|&a| tup.value(a).to_string()).collect();
            let val = tup.value(rhs).to_string();
            match seen.get(&key) {
                Some(prev) if prev != &val => return false,
                None => {
                    seen.insert(key, val);
                }
                _ => {}
            }
        }
        true
    }

    #[test]
    fn clean_data_satisfies_all_three_fds() {
        let t = clean(600, 1);
        assert!(fd_holds(&t, &[attr::ZIPCODE], attr::STATE), "ϕ6");
        assert!(fd_holds(&t, &[attr::PHONE], attr::ZIPCODE), "ϕ7");
        assert!(fd_holds(&t, &[attr::PROVIDER_ID], attr::CITY), "ϕ8a");
        assert!(fd_holds(&t, &[attr::PROVIDER_ID], attr::PHONE), "ϕ8b");
    }

    #[test]
    fn combos_expose_their_specs() {
        assert_eq!(RuleCombo::Phi6.fd_specs().len(), 1);
        assert_eq!(RuleCombo::Phi6And7.fd_specs().len(), 2);
        assert_eq!(RuleCombo::Phi6To8.fd_specs().len(), 3);
        // every spec parses against the schema
        for combo in [RuleCombo::Phi6, RuleCombo::Phi6And7, RuleCombo::Phi6To8] {
            for spec in combo.fd_specs() {
                bigdansing_rules_smoke(spec);
            }
        }
    }

    fn bigdansing_rules_smoke(spec: &str) {
        // light parse check without depending on the rules crate:
        assert!(spec.contains("->"));
        for side in spec.split("->") {
            for a in side.split(',') {
                schema().index_of(a.trim()).unwrap();
            }
        }
    }

    #[test]
    fn dirty_data_targets_covered_attrs() {
        let gt = hai(500, RuleCombo::Phi6And7, 0.1, 2);
        assert!(gt.error_count() > 10);
        for c in &gt.errors {
            assert!(RuleCombo::Phi6And7
                .covered_attrs()
                .contains(&(c.attr as usize)));
        }
    }

    #[test]
    fn providers_repeat_across_rows() {
        let t = clean(300, 3);
        let distinct: std::collections::HashSet<i64> = t
            .tuples()
            .iter()
            .map(|t| t.value(attr::PROVIDER_ID).as_i64().unwrap())
            .collect();
        assert!(distinct.len() < t.len());
    }
}
