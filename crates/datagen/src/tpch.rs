//! TPC-H-shaped data: customers, lineitems, and their join (§6.1's
//! "we joined the lineitem and customer tables and applied 10% random
//! errors on the address"; rule ϕ3: `o_custkey → c_address`).

use crate::errors::garble_attrs;
use crate::text;
use crate::truth::GroundTruth;
use bigdansing_common::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Schema of the joined table:
/// `o_custkey, c_name, c_address, c_phone, l_quantity, l_price`.
pub fn joined_schema() -> Schema {
    Schema::parse("o_custkey,c_name,c_address,c_phone,l_quantity,l_price")
}

/// Attribute indices in the joined table.
pub mod attr {
    /// o_custkey
    pub const CUSTKEY: usize = 0;
    /// c_name
    pub const NAME: usize = 1;
    /// c_address
    pub const ADDRESS: usize = 2;
    /// c_phone
    pub const PHONE: usize = 3;
    /// l_quantity
    pub const QUANTITY: usize = 4;
    /// l_price
    pub const PRICE: usize = 5;
}

/// Schema of the standalone customer table (used by the dedup datasets).
pub fn customer_schema() -> Schema {
    Schema::parse("c_custkey,c_name,c_address,c_phone")
}

/// Generate a clean customer table with `customers` rows.
pub fn customers(customers: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..customers)
        .map(|k| {
            vec![
                Value::Int(k as i64),
                Value::str(text::name(&mut rng)),
                Value::str(format!("{} Main St #{k}", rng.gen_range(1..9999))),
                Value::str(text::phone(&mut rng)),
            ]
        })
        .collect();
    Table::from_rows("customer", customer_schema(), tuples)
}

/// Generate the clean joined lineitem ⋈ customer table with `rows`
/// lineitems over `rows / 8 + 1` customers (several lineitems per
/// customer, so ϕ3 has real blocks).
pub fn joined_clean(rows: usize, seed: u64) -> Table {
    let ncust = rows / 8 + 1;
    let cust = customers(ncust, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7C);
    let tuples = (0..rows)
        .map(|_| {
            let c = cust.tuples()[rng.gen_range(0..ncust)].clone();
            vec![
                c.value(0).clone(),
                c.value(1).clone(),
                c.value(2).clone(),
                c.value(3).clone(),
                Value::Int(rng.gen_range(1..50)),
                Value::Float((rng.gen_range(1.0..90_000.0f64) * 100.0).round() / 100.0),
            ]
        })
        .collect();
    Table::from_rows("tpch", joined_schema(), tuples)
}

/// The ϕ3 experiment input: joined table with `error_rate` random text
/// on the address.
pub fn tpch(rows: usize, error_rate: f64, seed: u64) -> GroundTruth {
    let c = joined_clean(rows, seed);
    garble_attrs(&c, &[attr::ADDRESS], error_rate, seed ^ 0x3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_join_satisfies_phi3() {
        let t = joined_clean(400, 1);
        let mut addr: std::collections::HashMap<i64, String> = Default::default();
        for tup in t.tuples() {
            let k = tup.value(attr::CUSTKEY).as_i64().unwrap();
            let a = tup.value(attr::ADDRESS).to_string();
            let prev = addr.entry(k).or_insert_with(|| a.clone());
            assert_eq!(*prev, a);
        }
    }

    #[test]
    fn customers_have_unique_keys() {
        let c = customers(100, 2);
        let keys: std::collections::HashSet<i64> = c
            .tuples()
            .iter()
            .map(|t| t.value(0).as_i64().unwrap())
            .collect();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn errors_hit_the_address_attribute() {
        let gt = tpch(500, 0.1, 3);
        assert!(gt.error_count() > 20);
        for c in &gt.errors {
            assert_eq!(c.attr as usize, attr::ADDRESS);
        }
    }

    #[test]
    fn multiple_lineitems_per_customer() {
        let t = joined_clean(400, 4);
        let mut counts: std::collections::HashMap<i64, usize> = Default::default();
        for tup in t.tuples() {
            *counts.entry(tup.value(0).as_i64().unwrap()).or_default() += 1;
        }
        assert!(counts.values().any(|&c| c > 1));
    }
}
