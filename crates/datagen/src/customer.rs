//! The deduplication datasets customer1 / customer2 (§6.1, §6.5):
//! TPC-H customers replicated 3× / 5× as exact duplicates, plus 2% of
//! tuples duplicated with random edits on name and phone.

use crate::errors::{inject_duplicates, replicate_exact};
use crate::tpch;
use bigdansing_common::Table;

/// Dedup ground truth: pairs of `(original id, edited duplicate id)`.
pub type DupPairs = Vec<(u64, u64)>;

/// Attribute indices in the customer schema (`c_custkey, c_name,
/// c_address, c_phone`).
pub mod attr {
    /// c_custkey
    pub const CUSTKEY: usize = 0;
    /// c_name
    pub const NAME: usize = 1;
    /// c_address
    pub const ADDRESS: usize = 2;
    /// c_phone
    pub const PHONE: usize = 3;
}

/// Build a dedup dataset: `base_rows` distinct customers replicated
/// `factor`× exactly, then `edit_rate` of rows duplicated with edits on
/// name and phone.
pub fn dedup_dataset(
    name: &str,
    base_rows: usize,
    factor: usize,
    edit_rate: f64,
    seed: u64,
) -> (Table, DupPairs) {
    let base = tpch::customers(base_rows, seed);
    let replicated = replicate_exact(&base, factor);
    let (table, pairs) = inject_duplicates(
        &replicated,
        &[attr::NAME, attr::PHONE],
        edit_rate,
        seed ^ 0xD,
    );
    (
        Table::new(name, table.schema().clone(), table.tuples().to_vec()),
        pairs,
    )
}

/// customer1: 3× exact duplicates (paper: 19M rows; size here is the
/// caller's choice).
pub fn customer1(base_rows: usize, seed: u64) -> (Table, DupPairs) {
    dedup_dataset("customer1", base_rows, 3, 0.02, seed)
}

/// customer2: 5× exact duplicates (paper: 32M rows).
pub fn customer2(base_rows: usize, seed: u64) -> (Table, DupPairs) {
    dedup_dataset("customer2", base_rows, 5, 0.02, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn customer1_is_three_x_plus_edits() {
        let (t, pairs) = customer1(200, 1);
        assert_eq!(t.len(), 600 + pairs.len());
        assert_eq!(t.name(), "customer1");
    }

    #[test]
    fn customer2_is_five_x() {
        let (t, _) = customer2(100, 2);
        assert!(t.len() >= 500);
    }

    #[test]
    fn edited_duplicates_stay_similar() {
        let (t, pairs) = customer1(300, 3);
        assert!(!pairs.is_empty());
        for (o, d) in &pairs {
            let orig = t.tuple(*o).unwrap().value(attr::NAME).to_string();
            let dup = t.tuple(*d).unwrap().value(attr::NAME).to_string();
            assert!(bigdansing_common::sim::levenshtein_similarity(&orig, &dup) > 0.7);
        }
    }
}
