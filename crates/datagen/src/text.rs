//! Value pools and random-text helpers shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// First-name pool (deterministic order).
pub const FIRST_NAMES: &[&str] = &[
    "Annie", "Laure", "John", "Mark", "Robert", "Mary", "James", "Linda", "Carlos", "Aisha", "Wei",
    "Fatima", "Igor", "Sofia", "Hiro", "Priya", "Omar", "Elena", "Noah", "Zara",
];

/// Last-name pool.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Jones", "Khan", "Garcia", "Chen", "Patel", "Okafor", "Ivanov", "Tanaka", "Silva",
    "Brown", "Miller", "Davis", "Haddad", "Novak", "Kim", "Osei", "Rossi", "Larsen", "Dubois",
];

/// (city, state) pairs; a zipcode deterministically maps into this pool,
/// which is what makes `zipcode → city` hold on clean data.
pub const CITIES: &[(&str, &str)] = &[
    ("NY", "NY"),
    ("LA", "CA"),
    ("CH", "IL"),
    ("SF", "CA"),
    ("HOU", "TX"),
    ("PHI", "PA"),
    ("PHX", "AZ"),
    ("SA", "TX"),
    ("SD", "CA"),
    ("DAL", "TX"),
    ("AUS", "TX"),
    ("SJ", "CA"),
    ("JAX", "FL"),
    ("COL", "OH"),
    ("FW", "TX"),
    ("CLT", "NC"),
    ("SEA", "WA"),
    ("DEN", "CO"),
    ("DC", "DC"),
    ("BOS", "MA"),
];

/// A full name drawn from the pools.
pub fn name(rng: &mut StdRng) -> String {
    let f = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    let l = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
    format!("{f} {l}")
}

/// Number of distinct zipcodes the generators draw from; also the number
/// of FD blocks, so block sizes grow linearly with table size.
pub const ZIP_POOL: i64 = 2000;

/// The city/state a zipcode maps to on clean data.
pub fn city_of_zip(zip: i64) -> (&'static str, &'static str) {
    let idx = (zip.unsigned_abs() as usize) % CITIES.len();
    CITIES[idx]
}

/// A random zipcode from the pool.
pub fn zipcode(rng: &mut StdRng) -> i64 {
    10_000 + rng.gen_range(0..ZIP_POOL)
}

/// A random 10-digit phone number string.
pub fn phone(rng: &mut StdRng) -> String {
    format!(
        "{:03}-{:03}-{:04}",
        rng.gen_range(200..999),
        rng.gen_range(0..1000),
        rng.gen_range(0..10000)
    )
}

/// Append random garbage to a string — the paper's "random text added to
/// attributes" error model.
pub fn garble(rng: &mut StdRng, s: &str) -> String {
    let tag: u32 = rng.gen_range(0..100_000);
    format!("{s}#{tag:05}")
}

/// Apply a single random character edit (substitute / insert / delete) —
/// the "random edits" of the dedup datasets.
pub fn random_edit(rng: &mut StdRng, s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let pos = rng.gen_range(0..chars.len());
    let letter = (b'a' + rng.gen_range(0..26u8)) as char;
    let mut out = chars;
    match rng.gen_range(0..3) {
        0 => out[pos] = letter,       // substitute
        1 => out.insert(pos, letter), // insert
        _ => {
            out.remove(pos); // delete
        }
    }
    let res: String = out.into_iter().collect();
    if res == s {
        format!("{s}{letter}")
    } else {
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_with_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(name(&mut a), name(&mut b));
        assert_eq!(phone(&mut a), phone(&mut b));
        assert_eq!(zipcode(&mut a), zipcode(&mut b));
    }

    #[test]
    fn zip_maps_consistently() {
        assert_eq!(city_of_zip(10007), city_of_zip(10007));
        let (c, s) = city_of_zip(10001);
        assert!(!c.is_empty() && !s.is_empty());
    }

    #[test]
    fn garble_changes_the_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = garble(&mut rng, "LA");
        assert_ne!(g, "LA");
        assert!(g.starts_with("LA#"));
    }

    #[test]
    fn random_edit_is_one_edit_away_and_different() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let e = random_edit(&mut rng, "Robert");
            assert_ne!(e, "Robert");
            assert!(bigdansing_common::sim::levenshtein("Robert", &e) <= 1);
        }
    }

    #[test]
    fn random_edit_handles_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(random_edit(&mut rng, ""), "x");
    }
}
