//! TaxA / TaxB: US personal-tax records (§6.1, following \[11\]).
//!
//! Clean invariants:
//! * `zipcode → city` and `zipcode → state` hold (ϕ1, ϕ6-style FDs);
//! * `rate` is a monotone function of `salary`, so the φ2/φD denial
//!   constraint `¬(t1.salary > t2.salary ∧ t1.rate < t2.rate)` holds.
//!
//! TaxA corrupts City/State with random text; TaxB corrupts Rate with
//! numeric noise.

use crate::errors::{garble_attrs, perturb_numeric};
use crate::text;
use crate::truth::GroundTruth;
use bigdansing_common::{Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The tax schema: `name, zipcode, city, state, salary, rate`.
pub fn schema() -> Schema {
    Schema::parse("name,zipcode,city,state,salary,rate")
}

/// Attribute indices.
pub mod attr {
    /// name
    pub const NAME: usize = 0;
    /// zipcode
    pub const ZIPCODE: usize = 1;
    /// city
    pub const CITY: usize = 2;
    /// state
    pub const STATE: usize = 3;
    /// salary
    pub const SALARY: usize = 4;
    /// rate
    pub const RATE: usize = 5;
}

/// The clean tax-rate schedule: piecewise-linear, strictly monotone in
/// salary.
pub fn clean_rate(salary: i64) -> f64 {
    let s = salary as f64;
    (5.0 + s / 10_000.0).min(45.0)
}

/// Generate `rows` clean tax records.
pub fn clean(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..rows)
        .map(|_| {
            let zip = text::zipcode(&mut rng);
            let (city, state) = text::city_of_zip(zip);
            let salary = rng.gen_range(10_000..250_000i64);
            vec![
                Value::str(text::name(&mut rng)),
                Value::Int(zip),
                Value::str(city),
                Value::str(state),
                Value::Int(salary),
                Value::Float(clean_rate(salary)),
            ]
        })
        .collect();
    Table::from_rows("taxa", schema(), tuples)
}

/// TaxA: clean table + random text on City and State at `error_rate`.
pub fn taxa(rows: usize, error_rate: f64, seed: u64) -> GroundTruth {
    let c = clean(rows, seed);
    garble_attrs(&c, &[attr::CITY, attr::STATE], error_rate, seed ^ 0xA)
}

/// TaxB: clean table + numeric noise on Rate at `error_rate`.
pub fn taxb(rows: usize, error_rate: f64, seed: u64) -> GroundTruth {
    let mut c = clean(rows, seed);
    // rename for clarity in reports
    c = Table::new("taxb", c.schema().clone(), c.tuples().to_vec());
    perturb_numeric(&c, attr::RATE, error_rate, seed ^ 0xB)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_satisfies_phi1() {
        let t = clean(500, 1);
        // zipcode -> city must hold
        let mut seen: std::collections::HashMap<i64, String> = Default::default();
        for tup in t.tuples() {
            let zip = tup.value(attr::ZIPCODE).as_i64().unwrap();
            let city = tup.value(attr::CITY).to_string();
            let prev = seen.entry(zip).or_insert_with(|| city.clone());
            assert_eq!(*prev, city, "clean TaxA violates zipcode→city");
        }
    }

    #[test]
    fn clean_data_satisfies_phi2() {
        let t = clean(300, 2);
        for a in t.tuples() {
            for b in t.tuples() {
                let (sa, ra) = (a.value(attr::SALARY), a.value(attr::RATE));
                let (sb, rb) = (b.value(attr::SALARY), b.value(attr::RATE));
                assert!(
                    !(sa > sb && ra < rb),
                    "clean TaxB violates the salary/rate DC"
                );
            }
        }
    }

    #[test]
    fn taxa_injects_city_state_errors_only() {
        let gt = taxa(400, 0.1, 3);
        assert!(gt.error_count() > 10);
        for c in &gt.errors {
            assert!(c.attr as usize == attr::CITY || c.attr as usize == attr::STATE);
        }
    }

    #[test]
    fn taxb_breaks_the_dc() {
        let gt = taxb(400, 0.1, 4);
        // at least one violating pair must now exist
        let t = &gt.dirty;
        let mut found = false;
        'outer: for a in t.tuples() {
            for b in t.tuples() {
                if a.value(attr::SALARY) > b.value(attr::SALARY)
                    && a.value(attr::RATE) < b.value(attr::RATE)
                {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "TaxB noise should create DC violations");
    }

    #[test]
    fn deterministic_and_sized() {
        let a = taxa(100, 0.1, 9);
        let b = taxa(100, 0.1, 9);
        assert_eq!(a.dirty.diff_cells(&b.dirty), 0);
        assert_eq!(a.dirty.len(), 100);
    }
}
