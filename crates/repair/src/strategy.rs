//! Repair-strategy selection, shared by the batch cleanse loop and the
//! incremental session.
//!
//! The strategy names the paper's two distribution routes (§5.1 black
//! box per connected component, §5.2 native equivalence classes) plus
//! the centralized baseline; [`run_repair`] dispatches one repair round
//! over a violation set accordingly.

use crate::blackbox::RepairOptions;
use crate::dist_equivalence::repair_distributed_equivalence;
use crate::{repair_parallel, repair_serial, Assignment, Detected};
use crate::{EquivalenceClassRepair, RepairAlgorithm};
use bigdansing_common::error::Result;
use bigdansing_dataflow::Engine;
use std::sync::Arc;

/// How repairs are computed each iteration.
#[derive(Clone)]
pub enum RepairStrategy {
    /// §5.1: run a centralized algorithm per connected component, in
    /// parallel (the default, with the equivalence-class algorithm).
    ParallelBlackBox(Arc<dyn RepairAlgorithm>),
    /// The centralized baseline: one instance over all violations.
    SerialBlackBox(Arc<dyn RepairAlgorithm>),
    /// §5.2: the natively distributed equivalence-class algorithm
    /// (two map-reduce rounds).
    DistributedEquivalence,
}

impl Default for RepairStrategy {
    fn default() -> Self {
        RepairStrategy::ParallelBlackBox(Arc::new(EquivalenceClassRepair))
    }
}

impl std::fmt::Debug for RepairStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairStrategy::ParallelBlackBox(a) => write!(f, "ParallelBlackBox({})", a.name()),
            RepairStrategy::SerialBlackBox(a) => write!(f, "SerialBlackBox({})", a.name()),
            RepairStrategy::DistributedEquivalence => write!(f, "DistributedEquivalence"),
        }
    }
}

/// Run one repair round over `detected` with the chosen strategy.
pub fn run_repair(
    engine: &Engine,
    detected: &[Detected],
    strategy: &RepairStrategy,
    options: RepairOptions,
) -> Result<Assignment> {
    match strategy {
        RepairStrategy::ParallelBlackBox(algo) => {
            repair_parallel(engine, detected, algo.as_ref(), options)
        }
        RepairStrategy::SerialBlackBox(algo) => Ok(repair_serial(detected, algo.as_ref())),
        RepairStrategy::DistributedEquivalence => repair_distributed_equivalence(engine, detected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_common::{Cell, Value};
    use bigdansing_rules::{Fix, Violation};

    fn one_violation() -> Vec<Detected> {
        let ca = Cell::new(1, 0);
        let cb = Cell::new(2, 0);
        let mut v = Violation::new("fd");
        v.add_cell(ca, Value::str("A"));
        v.add_cell(cb, Value::str("B"));
        vec![(
            v,
            vec![Fix::assign_cell(ca, Value::str("A"), cb, Value::str("B"))],
        )]
    }

    #[test]
    fn all_strategies_dispatch() {
        let engine = Engine::parallel(2);
        let detected = one_violation();
        for strategy in [
            RepairStrategy::default(),
            RepairStrategy::SerialBlackBox(Arc::new(EquivalenceClassRepair)),
            RepairStrategy::DistributedEquivalence,
        ] {
            let a = run_repair(&engine, &detected, &strategy, RepairOptions::default()).unwrap();
            assert!(!a.is_empty(), "{strategy:?} produced no assignment");
        }
    }

    #[test]
    fn debug_names_the_algorithm() {
        let s = format!("{:?}", RepairStrategy::default());
        assert!(s.contains("ParallelBlackBox"));
    }
}
