//! Scaling data repair as a black box (§5.1).
//!
//! "We divide a repair task into independent smaller repair tasks":
//! build the violation hypergraph, find its connected components, and
//! hand each component to an independent instance of a centralized
//! [`RepairAlgorithm`], run in parallel across the engine's workers.
//!
//! The driver is zero-copy: components are groups of *indexes* into the
//! shared `detected` slice, and each repair task borrows its violations
//! from it — no per-`Detected` clone. Component tasks run through
//! [`Engine::run_stage`], so they inherit cancellation/deadline/memory
//! governance, retry-with-isolation, and the fused pass shows up in the
//! plan trace (`--explain`) as a `repair` pass.

use crate::cc::{components_bsp, group_by_component};
use crate::hypergraph::Hypergraph;
use crate::partition::{repair_partitioned, PartitionConfig};
use crate::{Assignment, Detected};
use bigdansing_common::error::Result;
use bigdansing_common::metrics::{deep_clones_total, Metrics};
use bigdansing_dataflow::stage::PassKind;
use bigdansing_dataflow::Engine;

/// A centralized repair algorithm, treated as a black box: it receives
/// one connected component of the violation hypergraph (violations with
/// their possible fixes, borrowed from the shared detection output) and
/// returns cell assignments.
pub trait RepairAlgorithm: Send + Sync {
    /// Algorithm name (for reports).
    fn name(&self) -> &str;
    /// Compute a repair for one component.
    fn repair(&self, component: &[&Detected]) -> Assignment;
}

/// Options for the parallel driver.
#[derive(Debug, Clone, Copy)]
pub struct RepairOptions {
    /// Components with more violations than this are k-way partitioned
    /// and repaired with the master/slave protocol (the paper's
    /// "dealing with big connected components"). `usize::MAX` disables.
    pub max_component_size: usize,
    /// k for the partitioned path.
    pub k: usize,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            max_component_size: usize::MAX,
            k: 4,
        }
    }
}

/// Run `algo` independently on every connected component, in parallel —
/// the distributed black-box repair of §5.1. Assignments are disjoint
/// across components, so the union is conflict-free.
///
/// Records `components_found` / `components_partitioned` /
/// `repair_cells_assigned` on the engine's metrics (plus
/// `cc_supersteps` via the CC pass), and attributes deep payload copies
/// made during the round to `tuples_cloned` — zero on the
/// component-grouping path, which moves only indexes.
pub fn repair_parallel(
    engine: &Engine,
    detected: &[Detected],
    algo: &dyn RepairAlgorithm,
    options: RepairOptions,
) -> Result<Assignment> {
    if detected.is_empty() {
        return Ok(Assignment::new());
    }
    let clones_before = deep_clones_total();
    let graph = Hypergraph::build(detected);
    let bsp = components_bsp(engine, graph.topology())?;
    let groups = group_by_component(&bsp.edge_labels);
    let metrics = engine.metrics();
    Metrics::add(&metrics.components_found, groups.len() as u64);
    let partitioned = groups
        .iter()
        .filter(|g| g.len() > options.max_component_size)
        .count();
    Metrics::add(&metrics.components_partitioned, partitioned as u64);
    engine.record_pass(
        PassKind::Repair,
        vec![
            "hypergraph".into(),
            "cc-bsp".into(),
            format!("repair:{}", algo.name()),
        ],
        groups.len(),
    );
    let results = engine.run_stage(&groups, |_, idxs: &Vec<usize>| {
        let component: Vec<&Detected> = idxs
            .iter()
            .map(|&e| &detected[graph.detected_index(e)])
            .collect();
        Ok(if component.len() > options.max_component_size {
            repair_partitioned(
                algo,
                &component,
                PartitionConfig {
                    k: options.k,
                    max_iterations: 8,
                },
            )
        } else {
            algo.repair(&component)
        })
    })?;
    let mut out = Assignment::new();
    for r in results {
        out.extend(r);
    }
    Metrics::add(&metrics.repair_cells_assigned, out.len() as u64);
    Metrics::add(
        &metrics.tuples_cloned,
        deep_clones_total().saturating_sub(clones_before),
    );
    Ok(out)
}

/// The centralized baseline: one repair instance over the entire
/// violation set (what NADEEF does; the serial arm of Figure 12(b)).
pub fn repair_serial(detected: &[Detected], algo: &dyn RepairAlgorithm) -> Assignment {
    let refs: Vec<&Detected> = detected.iter().collect();
    algo.repair(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EquivalenceClassRepair;
    use bigdansing_common::{Cell, Value};
    use bigdansing_rules::{Fix, Violation};

    fn fd_detected(a: u64, va: &str, b: u64, vb: &str, attr: usize) -> Detected {
        let ca = Cell::new(a, attr);
        let cb = Cell::new(b, attr);
        let mut v = Violation::new("fd");
        v.add_cell(ca, Value::str(va));
        v.add_cell(cb, Value::str(vb));
        (
            v,
            vec![Fix::assign_cell(ca, Value::str(va), cb, Value::str(vb))],
        )
    }

    #[test]
    fn parallel_equals_serial_for_equivalence_class() {
        let detected = vec![
            fd_detected(1, "LA", 2, "SF", 2),
            fd_detected(3, "LA", 2, "SF", 2),
            fd_detected(10, "NY", 11, "BO", 3),
            fd_detected(12, "NY", 11, "BO", 3),
        ];
        let algo = EquivalenceClassRepair;
        let serial = repair_serial(&detected, &algo);
        let engine = Engine::parallel(4);
        let parallel =
            repair_parallel(&engine, &detected, &algo, RepairOptions::default()).unwrap();
        assert_eq!(serial, parallel);
        assert!(!parallel.is_empty());
    }

    #[test]
    fn components_repair_independently() {
        // two disjoint components; the second should not affect the first
        let detected = vec![
            fd_detected(1, "A", 2, "B", 0),
            fd_detected(100, "X", 101, "Y", 1),
        ];
        let engine = Engine::parallel(2);
        let assign = repair_parallel(
            &engine,
            &detected,
            &EquivalenceClassRepair,
            RepairOptions::default(),
        )
        .unwrap();
        // each pair ties → smaller value wins → one change per component
        assert_eq!(assign.len(), 2);
        assert_eq!(assign[&Cell::new(2, 0)], Value::str("A"));
        assert_eq!(assign[&Cell::new(101, 1)], Value::str("X"));
    }

    #[test]
    fn grouping_path_is_zero_copy_and_metered() {
        let _serial = crate::testsync::lock();
        let detected: Vec<Detected> = (0..20)
            .map(|i| fd_detected(10 * i, "LA", 10 * i + 1, "SF", 2))
            .collect();
        let engine = Engine::parallel(2);
        let assign = repair_parallel(
            &engine,
            &detected,
            &EquivalenceClassRepair,
            RepairOptions::default(),
        )
        .unwrap();
        assert!(!assign.is_empty());
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.components_found, 20);
        assert_eq!(snap.components_partitioned, 0);
        assert!(snap.cc_supersteps >= 1);
        assert_eq!(snap.repair_cells_assigned, assign.len() as u64);
        assert_eq!(
            snap.tuples_cloned, 0,
            "component grouping must not clone violations"
        );
        // the fused repair pass is visible in the plan trace
        assert!(engine.explain().contains("repair"));
    }

    #[test]
    fn oversized_components_take_the_partitioned_path() {
        let _serial = crate::testsync::lock();
        // a chain component with 6 violations, threshold 2 → partitioned
        let mut detected = Vec::new();
        for i in 0..6u64 {
            detected.push(fd_detected(i, "LA", i + 1, "SF", 2));
        }
        let engine = Engine::parallel(2);
        let assign = repair_parallel(
            &engine,
            &detected,
            &EquivalenceClassRepair,
            RepairOptions {
                max_component_size: 2,
                k: 3,
            },
        )
        .unwrap();
        assert!(!assign.is_empty());
        assert_eq!(Metrics::get(&engine.metrics().components_partitioned), 1);
    }

    #[test]
    fn cancelled_engine_aborts_between_components() {
        let engine = Engine::parallel(2);
        let detected: Vec<Detected> = (0..8)
            .map(|i| fd_detected(10 * i, "A", 10 * i + 1, "B", 0))
            .collect();
        engine.cancel_job(bigdansing_dataflow::CancelReason::User);
        let err = repair_parallel(
            &engine,
            &detected,
            &EquivalenceClassRepair,
            RepairOptions::default(),
        );
        assert!(err.is_err(), "cancelled repair must surface the error");
    }

    #[test]
    fn empty_input_is_a_noop() {
        let engine = Engine::sequential();
        let assign = repair_parallel(
            &engine,
            &[],
            &EquivalenceClassRepair,
            RepairOptions::default(),
        )
        .unwrap();
        assert!(assign.is_empty());
    }
}
