//! Scaling data repair as a black box (§5.1).
//!
//! "We divide a repair task into independent smaller repair tasks":
//! build the violation hypergraph, find its connected components, and
//! hand each component to an independent instance of a centralized
//! [`RepairAlgorithm`], run in parallel across the engine's workers.

use crate::cc::{components_bsp, group_by_component};
use crate::hypergraph::Hypergraph;
use crate::partition::{repair_partitioned, PartitionConfig};
use crate::{Assignment, Detected};
use bigdansing_dataflow::pool::par_map_indexed;
use bigdansing_dataflow::Engine;

/// A centralized repair algorithm, treated as a black box: it receives
/// one connected component of the violation hypergraph (violations with
/// their possible fixes) and returns cell assignments.
pub trait RepairAlgorithm: Send + Sync {
    /// Algorithm name (for reports).
    fn name(&self) -> &str;
    /// Compute a repair for one component.
    fn repair(&self, component: &[Detected]) -> Assignment;
}

/// Options for the parallel driver.
#[derive(Debug, Clone, Copy)]
pub struct RepairOptions {
    /// Components with more violations than this are k-way partitioned
    /// and repaired with the master/slave protocol (the paper's
    /// "dealing with big connected components"). `usize::MAX` disables.
    pub max_component_size: usize,
    /// k for the partitioned path.
    pub k: usize,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            max_component_size: usize::MAX,
            k: 4,
        }
    }
}

/// Run `algo` independently on every connected component, in parallel —
/// the distributed black-box repair of §5.1. Assignments are disjoint
/// across components, so the union is conflict-free.
pub fn repair_parallel(
    engine: &Engine,
    detected: &[Detected],
    algo: &dyn RepairAlgorithm,
    options: RepairOptions,
) -> Assignment {
    let graph = Hypergraph::build(detected);
    let labels = components_bsp(engine, &graph.encoded_edges());
    let groups = group_by_component(&labels);
    let components: Vec<Vec<Detected>> = groups
        .into_iter()
        .map(|idxs| {
            idxs.into_iter()
                .map(|i| detected[graph.edges[i].detected_idx].clone())
                .collect()
        })
        .collect();
    let results = par_map_indexed(engine.workers(), components, |_, comp: Vec<Detected>| {
        if comp.len() > options.max_component_size {
            repair_partitioned(
                algo,
                &comp,
                PartitionConfig {
                    k: options.k,
                    max_iterations: 8,
                },
            )
        } else {
            algo.repair(&comp)
        }
    });
    let mut out = Assignment::new();
    for r in results {
        out.extend(r);
    }
    out
}

/// The centralized baseline: one repair instance over the entire
/// violation set (what NADEEF does; the serial arm of Figure 12(b)).
pub fn repair_serial(detected: &[Detected], algo: &dyn RepairAlgorithm) -> Assignment {
    algo.repair(detected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EquivalenceClassRepair;
    use bigdansing_common::{Cell, Value};
    use bigdansing_rules::{Fix, Violation};

    fn fd_detected(a: u64, va: &str, b: u64, vb: &str, attr: usize) -> Detected {
        let ca = Cell::new(a, attr);
        let cb = Cell::new(b, attr);
        let mut v = Violation::new("fd");
        v.add_cell(ca, Value::str(va));
        v.add_cell(cb, Value::str(vb));
        (
            v,
            vec![Fix::assign_cell(ca, Value::str(va), cb, Value::str(vb))],
        )
    }

    #[test]
    fn parallel_equals_serial_for_equivalence_class() {
        let detected = vec![
            fd_detected(1, "LA", 2, "SF", 2),
            fd_detected(3, "LA", 2, "SF", 2),
            fd_detected(10, "NY", 11, "BO", 3),
            fd_detected(12, "NY", 11, "BO", 3),
        ];
        let algo = EquivalenceClassRepair;
        let serial = repair_serial(&detected, &algo);
        let engine = Engine::parallel(4);
        let parallel = repair_parallel(&engine, &detected, &algo, RepairOptions::default());
        assert_eq!(serial, parallel);
        assert!(!parallel.is_empty());
    }

    #[test]
    fn components_repair_independently() {
        // two disjoint components; the second should not affect the first
        let detected = vec![
            fd_detected(1, "A", 2, "B", 0),
            fd_detected(100, "X", 101, "Y", 1),
        ];
        let engine = Engine::parallel(2);
        let assign = repair_parallel(
            &engine,
            &detected,
            &EquivalenceClassRepair,
            RepairOptions::default(),
        );
        // each pair ties → smaller value wins → one change per component
        assert_eq!(assign.len(), 2);
        assert_eq!(assign[&Cell::new(2, 0)], Value::str("A"));
        assert_eq!(assign[&Cell::new(101, 1)], Value::str("X"));
    }

    #[test]
    fn oversized_components_take_the_partitioned_path() {
        // a chain component with 6 violations, threshold 2 → partitioned
        let mut detected = Vec::new();
        for i in 0..6u64 {
            detected.push(fd_detected(i, "LA", i + 1, "SF", 2));
        }
        let engine = Engine::parallel(2);
        let assign = repair_parallel(
            &engine,
            &detected,
            &EquivalenceClassRepair,
            RepairOptions {
                max_component_size: 2,
                k: 3,
            },
        );
        assert!(!assign.is_empty());
    }

    #[test]
    fn empty_input_is_a_noop() {
        let engine = Engine::sequential();
        let assign = repair_parallel(
            &engine,
            &[],
            &EquivalenceClassRepair,
            RepairOptions::default(),
        );
        assert!(assign.is_empty());
    }
}
