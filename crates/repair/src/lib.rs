#![warn(missing_docs)]

//! # bigdansing-repair
//!
//! Distributed repair (§5 of the paper). Two routes:
//!
//! 1. **Black box** (§5.1, [`blackbox`]): any centralized
//!    [`RepairAlgorithm`] is scaled out by splitting the violation
//!    hypergraph ([`hypergraph`]) into connected components
//!    ([`cc`] — a BSP label-propagation implementation standing in for
//!    GraphX, with a union-find oracle) and running one independent
//!    repair instance per component in parallel. Components too large
//!    for one worker are k-way partitioned with a master/slave conflict
//!    protocol ([`partition`]).
//! 2. **Native distribution** (§5.2, [`dist_equivalence`]): the
//!    equivalence-class algorithm of Bohannon et al. recast as two
//!    map-reduce (word-count-style) rounds over `(ccid, value)` keys.
//!
//! The supported centralized algorithms are the equivalence-class
//! algorithm ([`equivalence`]) and a hypergraph-based greedy algorithm
//! for DCs with numeric/inequality fixes ([`hyper`]).

pub mod blackbox;
pub mod cc;
pub mod dist_equivalence;
pub mod equivalence;
pub mod fixeval;
pub mod hyper;
pub mod hypergraph;
pub mod partition;
pub mod strategy;

pub use blackbox::{repair_parallel, repair_serial, RepairAlgorithm};
pub use equivalence::EquivalenceClassRepair;
pub use hyper::HypergraphRepair;
pub use strategy::{run_repair, RepairStrategy};

use bigdansing_common::{Cell, Value};
use std::collections::HashMap;

/// The output of a repair step: the cell updates to apply.
pub type Assignment = HashMap<Cell, Value>;

/// A detected violation together with its possible fixes — the repair
/// stage's input unit.
pub type Detected = (bigdansing_rules::Violation, Vec<bigdansing_rules::Fix>);

#[cfg(test)]
pub(crate) mod testsync {
    //! Serializes tests that produce or assert on the process-global
    //! deep-clone counter, so the zero-copy gate's window stays clean.
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}
