//! The hypergraph-based repair algorithm for general (e.g. DC) rules —
//! the second centralized algorithm BigDansing ships (§5.1), following
//! the holistic strategy of Chu et al. \[6\] and the vertex-cover
//! heuristic of Kolahi & Lakshmanan \[23\]:
//!
//! 1. pick the cell appearing in the most unresolved violations (a
//!    greedy vertex cover of the hyperedges),
//! 2. gather every constraint the possible fixes place on that cell,
//! 3. assign the value that satisfies the most constraints at the least
//!    cost — for numeric inequality constraints this clamps the cell
//!    into the feasible `[max lower bound, min upper bound]` interval,
//!    our stand-in for the quadratic-programming relaxation of \[6\],
//! 4. repeat until every violation is resolved (or the round budget is
//!    exhausted — the §2.2 loop re-detects and retries).

use crate::blackbox::RepairAlgorithm;
use crate::fixeval::{current, value_above, value_below, violation_resolved};
use crate::{Assignment, Detected};
use bigdansing_common::{Cell, Value};
use bigdansing_rules::{FixRhs, Op};
use std::collections::HashMap;

/// Greedy holistic hypergraph repair.
#[derive(Debug, Clone)]
pub struct HypergraphRepair {
    /// Safety bound on cover/assign rounds over the component.
    pub max_rounds: usize,
}

impl Default for HypergraphRepair {
    fn default() -> Self {
        HypergraphRepair { max_rounds: 4 }
    }
}

/// A requirement `cell op <target>` derived from a possible fix. The
/// target is another cell (resolved through the evolving assignment, so
/// a partner repaired earlier in the same round supplies its *new*
/// value) or a constant.
#[derive(Debug, Clone)]
struct Constraint {
    op: Op,
    /// Partner cell, when the bound comes from another element.
    cell: Option<Cell>,
    /// Observed value (of the partner cell, or the constant).
    value: Value,
}

impl Constraint {
    /// The bound's current value under `assign`.
    fn target<'a>(&'a self, assign: &'a Assignment) -> &'a Value {
        match self.cell {
            Some(c) => current(assign, c, &self.value),
            None => &self.value,
        }
    }

    /// Does `v` satisfy the constraint under `assign`?
    fn holds(&self, v: &Value, assign: &Assignment) -> bool {
        self.op.holds(v, self.target(assign))
    }
}

/// Constraints each cell would have to satisfy to enforce some fix of an
/// unresolved violation, plus each cell's violation degree.
/// Per-cell constraint lists (tagged with their violation index) and
/// per-cell violation degrees.
type Gathered = (
    HashMap<Cell, Vec<(usize, Constraint)>>,
    HashMap<Cell, usize>,
);

fn gather(component: &[&Detected], unresolved: &[usize], assign: &Assignment) -> Gathered {
    let mut constraints: HashMap<Cell, Vec<(usize, Constraint)>> = HashMap::new();
    let mut degree: HashMap<Cell, usize> = HashMap::new();
    let _ = assign;
    for &vi in unresolved {
        let (_, fixes) = component[vi];
        for fix in fixes {
            // enforcing through the left cell: left op rhs
            let (rhs_cell, rhs_value) = match &fix.rhs {
                FixRhs::Cell(c, v) => (Some(*c), v.clone()),
                FixRhs::Const(v) => (None, v.clone()),
            };
            constraints.entry(fix.left).or_default().push((
                vi,
                Constraint {
                    op: fix.op,
                    cell: rhs_cell,
                    value: rhs_value,
                },
            ));
            *degree.entry(fix.left).or_default() += 1;
            // enforcing through the rhs cell: left op c  ⇔  c flip(op) left
            if let FixRhs::Cell(c, _) = &fix.rhs {
                constraints.entry(*c).or_default().push((
                    vi,
                    Constraint {
                        op: fix.op.flip(),
                        cell: Some(fix.left),
                        value: fix.left_value.clone(),
                    },
                ));
                *degree.entry(*c).or_default() += 1;
            }
        }
    }
    (constraints, degree)
}

/// The value for `cell` satisfying the most of its constraints, at
/// minimal distance from the current value. Numeric bound constraints
/// are combined into a feasible interval first.
fn best_value(
    current_value: &Value,
    constraints: &[(usize, Constraint)],
    assign: &Assignment,
) -> Value {
    // feasible interval from the ordering constraints
    let mut lower: Option<Value> = None; // c >= lower
    let mut upper: Option<Value> = None; // c <= upper
    let mut candidates: Vec<Value> = vec![current_value.clone()];
    for (_, c) in constraints {
        let target = c.target(assign).clone();
        match c.op {
            Op::Ge => {
                if lower.as_ref().is_none_or(|l| target > *l) {
                    lower = Some(target);
                }
            }
            Op::Gt => {
                let v = value_above(&target);
                if lower.as_ref().is_none_or(|l| v > *l) {
                    lower = Some(v);
                }
            }
            Op::Le => {
                if upper.as_ref().is_none_or(|u| target < *u) {
                    upper = Some(target);
                }
            }
            Op::Lt => {
                let v = value_below(&target);
                if upper.as_ref().is_none_or(|u| v < *u) {
                    upper = Some(v);
                }
            }
            Op::Eq => candidates.push(target),
            Op::Ne => candidates.push(value_above(&target)),
        }
    }
    // the clamp of the current value into [lower, upper] is the
    // minimal-change point of the feasible interval
    let mut clamped = current_value.clone();
    if let Some(l) = &lower {
        if clamped < *l {
            clamped = l.clone();
        }
    }
    if let Some(u) = &upper {
        if clamped > *u {
            clamped = u.clone();
        }
    }
    candidates.push(clamped);
    if let Some(l) = &lower {
        candidates.push(l.clone());
    }
    if let Some(u) = &upper {
        candidates.push(u.clone());
    }
    // Interior candidates: with contradictory bounds (typical when some
    // bounds come from *other dirty cells*) the optimum sits strictly
    // between the extremes, so sample the constraint targets themselves.
    let mut targets: Vec<Value> = constraints
        .iter()
        .map(|(_, c)| c.target(assign).clone())
        .collect();
    targets.sort();
    targets.dedup();
    const MAX_SAMPLES: usize = 32;
    let stride = (targets.len() / MAX_SAMPLES).max(1);
    for t in targets.iter().step_by(stride) {
        candidates.push(t.clone());
        candidates.push(value_above(t));
    }
    // score candidates: satisfied constraints desc, distance asc, value asc
    let score = |v: &Value| -> usize {
        constraints
            .iter()
            .filter(|(_, c)| c.holds(v, assign))
            .count()
    };
    candidates.sort();
    candidates.dedup();
    candidates
        .into_iter()
        .map(|v| {
            let s = score(&v);
            let d = current_value.distance(&v);
            (v, s, d)
        })
        .max_by(|(va, sa, da), (vb, sb, db)| {
            sa.cmp(sb)
                .then_with(|| db.total_cmp(da))
                .then_with(|| vb.cmp(va))
        })
        .map(|(v, _, _)| v)
        .expect("candidates never empty")
}

impl RepairAlgorithm for HypergraphRepair {
    fn name(&self) -> &str {
        "hypergraph"
    }

    fn repair(&self, component: &[&Detected]) -> Assignment {
        let mut assign = Assignment::new();
        for _ in 0..self.max_rounds.max(1) {
            let unresolved: Vec<usize> = (0..component.len())
                .filter(|&i| !violation_resolved(component[i], &assign))
                .collect();
            if unresolved.is_empty() {
                break;
            }
            let (constraints, degree) = gather(component, &unresolved, &assign);
            if constraints.is_empty() {
                break; // violations with no possible fixes: terminal (§2.2)
            }
            // greedy cover: repair cells in descending violation degree,
            // breaking ties toward the cheapest repair (§2.1's cost
            // model); skip violations already covered within this round
            let cell_current = |cell: Cell| -> Value {
                assign.get(&cell).cloned().unwrap_or_else(|| {
                    constraints
                        .get(&cell)
                        .and_then(|cs| cs.first())
                        .and_then(|(vi, _)| component[*vi].0.value_of(cell).cloned())
                        .unwrap_or(Value::Null)
                })
            };
            let mut order: Vec<(Cell, f64)> = degree
                .keys()
                .map(|&c| {
                    let cur = cell_current(c);
                    let bv = best_value(&cur, &constraints[&c], &assign);
                    (c, cur.distance(&bv))
                })
                .collect();
            order.sort_by(|(ca, costa), (cb, costb)| {
                degree[cb]
                    .cmp(&degree[ca])
                    .then_with(|| costa.total_cmp(costb))
                    .then_with(|| ca.cmp(cb))
            });
            let order: Vec<Cell> = order.into_iter().map(|(c, _)| c).collect();
            let mut covered: std::collections::HashSet<usize> = Default::default();
            let mut changed = false;
            for cell in order {
                let Some(cs) = constraints.get(&cell) else {
                    continue;
                };
                let pending: Vec<(usize, Constraint)> = cs
                    .iter()
                    .filter(|(vi, _)| !covered.contains(vi))
                    .cloned()
                    .collect();
                if pending.is_empty() {
                    continue;
                }
                // the cell's current value: from the assignment overlay or
                // any violation that records it
                let cur = assign.get(&cell).cloned().unwrap_or_else(|| {
                    component[pending[0].0]
                        .0
                        .value_of(cell)
                        .cloned()
                        .unwrap_or(Value::Null)
                });
                let v = best_value(&cur, &pending, &assign);
                if v != cur {
                    assign.insert(cell, v.clone());
                    changed = true;
                }
                for (vi, c) in &pending {
                    if c.holds(&v, &assign) {
                        covered.insert(*vi);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::repair_serial;
    use crate::fixeval::fix_holds;
    use bigdansing_rules::{Fix, Violation};

    /// A φD-style violation: t1 (rich, low rate) vs t2 (poor, high rate).
    /// Possible fixes: t1.salary ≤ t2.salary OR t1.rate ≥ t2.rate.
    fn dc_detected(t1: u64, s1: i64, r1: i64, t2: u64, s2: i64, r2: i64) -> Detected {
        let sal = |t: u64| Cell::new(t, 4);
        let rate = |t: u64| Cell::new(t, 5);
        let mut v = Violation::new("dc:phi2");
        v.add_cell(sal(t1), Value::Int(s1));
        v.add_cell(sal(t2), Value::Int(s2));
        v.add_cell(rate(t1), Value::Int(r1));
        v.add_cell(rate(t2), Value::Int(r2));
        let fixes = vec![
            Fix::compare(
                sal(t1),
                Value::Int(s1),
                Op::Le,
                FixRhs::Cell(sal(t2), Value::Int(s2)),
            ),
            Fix::compare(
                rate(t1),
                Value::Int(r1),
                Op::Ge,
                FixRhs::Cell(rate(t2), Value::Int(r2)),
            ),
        ];
        (v, fixes)
    }

    #[test]
    fn resolves_dc_violation_with_minimal_change() {
        // salary gap is huge (200k→100k), rate gap tiny (10→11):
        // the cheap repair touches a rate, not a salary.
        let det = dc_detected(1, 200_000, 10, 2, 100_000, 11);
        let assign = repair_serial(std::slice::from_ref(&det), &HypergraphRepair::default());
        assert!(violation_resolved(&det, &assign));
        assert!(
            !assign.contains_key(&Cell::new(1, 4)) && !assign.contains_key(&Cell::new(2, 4)),
            "salaries should be untouched: {assign:?}"
        );
    }

    #[test]
    fn high_degree_cell_is_repaired_once_for_many_violations() {
        // one dirty tuple (id 0, rate far too low) violates against many
        // others; the cover heuristic should fix tuple 0's rate once
        let dets: Vec<Detected> = (1..20)
            .map(|i| dc_detected(0, 900, 1, i, 100 + i as i64, 50))
            .collect();
        let assign = repair_serial(&dets, &HypergraphRepair::default());
        // a single cell assignment (on tuple 0) resolves everything
        assert_eq!(assign.len(), 1, "{assign:?}");
        assert_eq!(assign.keys().next().unwrap().tuple, 0);
        for d in &dets {
            assert!(violation_resolved(d, &assign));
        }
    }

    #[test]
    fn every_violation_ends_resolved() {
        let dets = vec![
            dc_detected(1, 200, 10, 2, 100, 20),
            dc_detected(3, 500, 1, 2, 100, 20),
            dc_detected(1, 200, 10, 4, 50, 90),
        ];
        let assign = repair_serial(&dets, &HypergraphRepair::default());
        for d in &dets {
            assert!(violation_resolved(d, &assign), "unresolved: {:?}", d.0);
        }
        assert!(dets
            .iter()
            .all(|d| d.1.iter().any(|f| fix_holds(f, &assign)) || violation_resolved(d, &assign)));
    }

    #[test]
    fn violations_without_fixes_are_left_alone() {
        let mut v = Violation::new("r");
        v.add_cell(Cell::new(1, 0), Value::Int(1));
        let assign = repair_serial(&[(v, vec![])], &HypergraphRepair::default());
        assert!(
            assign.is_empty(),
            "no possible fixes → no repair (terminal state per §2.2)"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let dets: Vec<Detected> = (0..10)
            .map(|i| dc_detected(i, 100 + i as i64, 10, i + 100, 50, 20 + i as i64))
            .collect();
        let a1 = repair_serial(&dets, &HypergraphRepair::default());
        let a2 = repair_serial(&dets, &HypergraphRepair::default());
        assert_eq!(a1, a2);
    }

    #[test]
    fn poisoned_bounds_do_not_win() {
        // lower bounds from clean partners 15..19, one poisoned 80;
        // upper bounds 21..23, one poisoned 3. The optimum sits near 19,
        // satisfying 8 of 10 constraints — not at either extreme.
        let a = Assignment::new();
        let mut cs = Vec::new();
        for (i, v) in [15, 16, 17, 18, 19, 80].iter().enumerate() {
            cs.push((
                i,
                Constraint {
                    op: Op::Ge,
                    cell: None,
                    value: Value::Int(*v),
                },
            ));
        }
        for (i, v) in [21, 22, 23, 3].iter().enumerate() {
            cs.push((
                10 + i,
                Constraint {
                    op: Op::Le,
                    cell: None,
                    value: Value::Int(*v),
                },
            ));
        }
        let v = best_value(&Value::Int(2), &cs, &a);
        let sat = cs.iter().filter(|(_, c)| c.holds(&v, &a)).count();
        assert_eq!(
            sat, 8,
            "best candidate satisfies 8/10, got {v:?} with {sat}"
        );
        assert!(v >= Value::Int(19) && v <= Value::Int(21), "{v:?}");
    }

    #[test]
    fn feasible_interval_clamps_minimally() {
        // c must be >= 10 and <= 20; current 5 → clamp to 10
        let a = Assignment::new();
        let cs = vec![
            (
                0,
                Constraint {
                    op: Op::Ge,
                    cell: None,
                    value: Value::Int(10),
                },
            ),
            (
                1,
                Constraint {
                    op: Op::Le,
                    cell: None,
                    value: Value::Int(20),
                },
            ),
        ];
        assert_eq!(best_value(&Value::Int(5), &cs, &a), Value::Int(10));
        // current inside the interval → unchanged
        assert_eq!(best_value(&Value::Int(15), &cs, &a), Value::Int(15));
        // infeasible bounds → best-scoring candidate still returned
        let cs = vec![
            (
                0,
                Constraint {
                    op: Op::Ge,
                    cell: None,
                    value: Value::Int(20),
                },
            ),
            (
                1,
                Constraint {
                    op: Op::Le,
                    cell: None,
                    value: Value::Int(10),
                },
            ),
        ];
        let v = best_value(&Value::Int(15), &cs, &a);
        let sat = cs.iter().filter(|(_, c)| c.holds(&v, &a)).count();
        assert_eq!(sat, 1, "one of two incompatible constraints satisfied");
    }
}
