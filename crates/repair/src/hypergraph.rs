//! The violation hypergraph (§5.1).
//!
//! "The nodes represent the elements and each hyperedge covers a set of
//! elements that together violate a rule, along with possible repairs."

use crate::Detected;
use bigdansing_common::Cell;
use std::collections::BTreeSet;

/// One hyperedge: the element set of a violation (plus any extra cells
/// its fixes reference).
#[derive(Debug, Clone)]
pub struct HyperEdge {
    /// Index into the originating `Detected` slice.
    pub detected_idx: usize,
    /// Sorted, deduplicated member cells.
    pub cells: Vec<Cell>,
}

/// The violation hypergraph, in edge-list form (node set is implicit).
#[derive(Debug, Default)]
pub struct Hypergraph {
    /// One edge per violation.
    pub edges: Vec<HyperEdge>,
}

impl Hypergraph {
    /// Build from detection output. Cells referenced only by fixes are
    /// included too, so repairs on them stay inside one component.
    pub fn build(detected: &[Detected]) -> Hypergraph {
        let edges = detected
            .iter()
            .enumerate()
            .map(|(i, (v, fixes))| {
                let mut cells: BTreeSet<Cell> = v.cells().iter().map(|(c, _)| *c).collect();
                for f in fixes {
                    cells.extend(f.cells());
                }
                HyperEdge {
                    detected_idx: i,
                    cells: cells.into_iter().collect(),
                }
            })
            .collect();
        Hypergraph { edges }
    }

    /// Number of hyperedges (violations).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All distinct nodes (cells).
    pub fn nodes(&self) -> Vec<Cell> {
        let set: BTreeSet<Cell> = self
            .edges
            .iter()
            .flat_map(|e| e.cells.iter().copied())
            .collect();
        set.into_iter().collect()
    }

    /// Edge cells encoded as `u64` node ids (for the CC algorithms).
    pub fn encoded_edges(&self) -> Vec<Vec<u64>> {
        self.edges
            .iter()
            .map(|e| e.cells.iter().map(Cell::encode).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_common::Value;
    use bigdansing_rules::{Fix, Violation};

    fn detected(cells: &[(u64, usize)]) -> Detected {
        let mut v = Violation::new("r");
        for (t, a) in cells {
            v.add_cell(Cell::new(*t, *a), Value::Int(0));
        }
        (v, vec![])
    }

    #[test]
    fn builds_edges_with_sorted_unique_cells() {
        let d = vec![detected(&[(2, 1), (1, 1), (2, 1)])];
        let g = Hypergraph::build(&d);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges[0].cells, vec![Cell::new(1, 1), Cell::new(2, 1)]);
    }

    #[test]
    fn fix_only_cells_join_the_edge() {
        let mut v = Violation::new("r");
        v.add_cell(Cell::new(1, 0), Value::Int(0));
        let fix = Fix::assign_cell(
            Cell::new(1, 0),
            Value::Int(0),
            Cell::new(9, 4),
            Value::Int(1),
        );
        let g = Hypergraph::build(&[(v, vec![fix])]);
        assert!(g.edges[0].cells.contains(&Cell::new(9, 4)));
        assert_eq!(g.nodes().len(), 2);
    }

    #[test]
    fn figure7_shape() {
        // v1 = {c1, c2}, v2 = {c2, c3}, v3 = {c4, c5}
        let d = vec![
            detected(&[(1, 0), (2, 0)]),
            detected(&[(2, 0), (3, 0)]),
            detected(&[(4, 0), (5, 0)]),
        ];
        let g = Hypergraph::build(&d);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.nodes().len(), 5);
        assert_eq!(g.encoded_edges()[0].len(), 2);
    }
}
