//! The violation hypergraph (§5.1).
//!
//! "The nodes represent the elements and each hyperedge covers a set of
//! elements that together violate a rule, along with possible repairs."
//!
//! Cells are interned through a [`KeyDict`] into dense `u32` node ids
//! (the same dictionary-encoding idiom the detect shuffle uses for
//! blocking keys), and the incidence structure is stored as a CSR
//! [`EdgeList`] shared with the BSP connected-components pass — no
//! per-edge `Vec<Cell>` allocations, no `u64` re-encoding per round.
//! The build interns sequentially, so ordinals (node ids) are assigned
//! in deterministic first-appearance order.

use crate::cc::EdgeList;
use crate::Detected;
use bigdansing_common::keys::KeyDict;
use bigdansing_common::Cell;

/// The violation hypergraph: interned nodes plus CSR incidence.
#[derive(Debug, Default)]
pub struct Hypergraph {
    /// Cell payload per dense node id.
    node_cells: Vec<Cell>,
    /// CSR incidence: one edge per violation, members are node ids.
    topology: EdgeList,
    /// Index into the originating `Detected` slice, per edge.
    detected_idx: Vec<usize>,
}

impl Hypergraph {
    /// Build from detection output. Cells referenced only by fixes are
    /// included too, so repairs on them stay inside one component.
    pub fn build(detected: &[Detected]) -> Hypergraph {
        let dict: KeyDict<Cell> = KeyDict::new();
        let mut node_cells: Vec<Cell> = Vec::new();
        let intern = |c: Cell, cells: &mut Vec<Cell>| -> u32 {
            let id = dict.encode(c);
            // single-threaded encode: a fresh ordinal is always dense
            if id.ordinal() as usize == cells.len() {
                cells.push(c);
            }
            id.ordinal()
        };
        let mut topology = EdgeList::with_nodes(0);
        let mut detected_idx = Vec::with_capacity(detected.len());
        // scratch_cells mirrors scratch: edges are tiny, so a linear
        // membership scan is cheaper than re-hashing through the dict
        // for the cells a fix repeats from its violation
        let mut scratch: Vec<u32> = Vec::new();
        let mut scratch_cells: Vec<Cell> = Vec::new();
        for (i, (v, fixes)) in detected.iter().enumerate() {
            scratch.clear();
            scratch_cells.clear();
            let add = |c: Cell, cells: &mut Vec<Cell>, ids: &mut Vec<u32>, seen: &mut Vec<Cell>| {
                if !seen.contains(&c) {
                    seen.push(c);
                    ids.push(intern(c, cells));
                }
            };
            for (c, _) in v.cells() {
                add(*c, &mut node_cells, &mut scratch, &mut scratch_cells);
            }
            for f in fixes {
                add(f.left, &mut node_cells, &mut scratch, &mut scratch_cells);
                if let bigdansing_rules::FixRhs::Cell(c, _) = &f.rhs {
                    add(*c, &mut node_cells, &mut scratch, &mut scratch_cells);
                }
            }
            topology.push_edge(scratch.iter().copied());
            detected_idx.push(i);
        }
        topology.num_nodes = node_cells.len();
        Hypergraph {
            node_cells,
            topology,
            detected_idx,
        }
    }

    /// Number of hyperedges (violations).
    pub fn num_edges(&self) -> usize {
        self.topology.num_edges()
    }

    /// Number of distinct nodes (cells).
    pub fn num_nodes(&self) -> usize {
        self.node_cells.len()
    }

    /// The CSR incidence structure (input to the CC pass).
    pub fn topology(&self) -> &EdgeList {
        &self.topology
    }

    /// The cell behind a dense node id.
    pub fn cell_of(&self, node: u32) -> Cell {
        self.node_cells[node as usize]
    }

    /// Member node ids of edge `i` (sorted, deduplicated).
    pub fn edge_members(&self, i: usize) -> &[u32] {
        self.topology.edge(i)
    }

    /// Member cells of edge `i` (decoded; for reports and tests).
    pub fn edge_cells(&self, i: usize) -> Vec<Cell> {
        self.edge_members(i)
            .iter()
            .map(|&n| self.cell_of(n))
            .collect()
    }

    /// Index into the originating `Detected` slice for edge `i`.
    pub fn detected_index(&self, i: usize) -> usize {
        self.detected_idx[i]
    }

    /// All distinct nodes (cells), in interning order.
    pub fn nodes(&self) -> &[Cell] {
        &self.node_cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_common::Value;
    use bigdansing_rules::{Fix, Violation};

    fn detected(cells: &[(u64, usize)]) -> Detected {
        let mut v = Violation::new("r");
        for (t, a) in cells {
            v.add_cell(Cell::new(*t, *a), Value::Int(0));
        }
        (v, vec![])
    }

    #[test]
    fn builds_edges_with_unique_interned_cells() {
        let d = vec![detected(&[(2, 1), (1, 1), (2, 1)])];
        let g = Hypergraph::build(&d);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_nodes(), 2);
        let mut cells = g.edge_cells(0);
        cells.sort();
        assert_eq!(cells, vec![Cell::new(1, 1), Cell::new(2, 1)]);
    }

    #[test]
    fn interning_is_dense_and_first_appearance_ordered() {
        let d = vec![detected(&[(5, 0), (7, 0)]), detected(&[(7, 0), (9, 0)])];
        let g = Hypergraph::build(&d);
        assert_eq!(
            g.nodes(),
            &[Cell::new(5, 0), Cell::new(7, 0), Cell::new(9, 0)]
        );
        // shared cell resolves to the same node id in both edges
        assert!(g.edge_members(0).contains(&1));
        assert!(g.edge_members(1).contains(&1));
        assert_eq!(g.detected_index(0), 0);
        assert_eq!(g.detected_index(1), 1);
    }

    #[test]
    fn fix_only_cells_join_the_edge() {
        let mut v = Violation::new("r");
        v.add_cell(Cell::new(1, 0), Value::Int(0));
        let fix = Fix::assign_cell(
            Cell::new(1, 0),
            Value::Int(0),
            Cell::new(9, 4),
            Value::Int(1),
        );
        let g = Hypergraph::build(&[(v, vec![fix])]);
        assert!(g.edge_cells(0).contains(&Cell::new(9, 4)));
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn figure7_shape() {
        // v1 = {c1, c2}, v2 = {c2, c3}, v3 = {c4, c5}
        let d = vec![
            detected(&[(1, 0), (2, 0)]),
            detected(&[(2, 0), (3, 0)]),
            detected(&[(4, 0), (5, 0)]),
        ];
        let g = Hypergraph::build(&d);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.edge_members(0).len(), 2);
    }
}
