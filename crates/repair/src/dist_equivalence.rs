//! The scalable equivalence-class algorithm (§5.2).
//!
//! "We extend the equivalence class algorithm to a distributed setting
//! by modeling it as a distributed word counting algorithm … with two
//! map-reduce sequences":
//!
//! * round 1 maps each possible fix's elements to
//!   `⟨(ccid, value), 1⟩` — counting each element's value **once** even
//!   if it appears in several fixes — and reduces to per-(class, value)
//!   frequencies;
//! * round 2 re-keys by `ccid` and reduces to the highest-frequency
//!   value, which becomes `targ(E)` for every element of the class.
//!
//! Classes (`ccid`) come from the BSP connected components over the
//! equality-fix graph, exactly the GraphX step of §5.1. The result is
//! bit-identical to the centralized [`crate::EquivalenceClassRepair`]
//! (both break frequency ties toward the smaller value), which the
//! parity tests assert.

use crate::cc::components_bsp;
use crate::{Assignment, Detected};
use bigdansing_common::{Cell, Value};
use bigdansing_dataflow::{Engine, PDataset};
use bigdansing_rules::{FixRhs, Op};
use std::collections::{BTreeSet, HashMap};

/// Run the distributed equivalence-class repair on `engine`.
pub fn repair_distributed_equivalence(engine: &Engine, detected: &[Detected]) -> Assignment {
    // -- class formation: BSP connected components over Eq-fix edges --
    let mut edges: Vec<Vec<u64>> = Vec::new();
    let mut observed: HashMap<Cell, Value> = HashMap::new();
    let mut consts: BTreeSet<(Cell, Value)> = BTreeSet::new();
    for (violation, fixes) in detected {
        for (c, v) in violation.cells() {
            observed.entry(*c).or_insert_with(|| v.clone());
        }
        for fix in fixes {
            if fix.op != Op::Eq {
                continue;
            }
            observed
                .entry(fix.left)
                .or_insert_with(|| fix.left_value.clone());
            match &fix.rhs {
                FixRhs::Cell(rc, rv) => {
                    observed.entry(*rc).or_insert_with(|| rv.clone());
                    edges.push(vec![fix.left.encode(), rc.encode()]);
                }
                FixRhs::Const(k) => {
                    edges.push(vec![fix.left.encode()]);
                    consts.insert((fix.left, k.clone()));
                }
            }
        }
    }
    // include untouched violation cells as singleton classes so the
    // class map is total (they produce no assignment)
    let mut cells: Vec<Cell> = observed.keys().copied().collect();
    cells.sort();
    for c in &cells {
        edges.push(vec![c.encode()]);
    }
    let labels = components_bsp(engine, &edges);
    let mut class_of: HashMap<Cell, u64> = HashMap::new();
    for (edge, label) in edges.iter().zip(&labels) {
        for &node in edge {
            class_of.insert(Cell::decode(node), *label);
        }
    }

    // -- map-reduce round 1: ⟨(ccid, value), count⟩ with count-once ----
    // map: one record per element (deduplicated) and per const candidate
    let mut records: Vec<((u64, Value), u64)> = cells
        .iter()
        .map(|c| ((class_of[c], observed[c].clone()), 1u64))
        .collect();
    records.extend(consts.iter().map(|(c, k)| ((class_of[c], k.clone()), 1u64)));
    let counted: PDataset<((u64, Value), u64)> = PDataset::from_vec(engine.clone(), records)
        .reduce_by_key(|(k, _)| k.clone(), |(_, n)| n, |a, b| a + b);

    // -- map-reduce round 2: ⟨ccid, (value, count)⟩ → max-frequency -----
    let targets: Vec<(u64, (Value, u64))> = counted
        .map(|((cc, value), count)| (cc, (value, count)))
        .reduce_by_key(
            |(cc, _)| *cc,
            |(_, vc)| vc,
            |(va, ca), (vb, cb)| {
                // higher count wins; ties toward the smaller value
                match ca.cmp(&cb) {
                    std::cmp::Ordering::Less => (vb, cb),
                    std::cmp::Ordering::Greater => (va, ca),
                    std::cmp::Ordering::Equal => {
                        if va <= vb {
                            (va, ca)
                        } else {
                            (vb, cb)
                        }
                    }
                }
            },
        )
        .collect();
    let targ: HashMap<u64, Value> = targets.into_iter().map(|(cc, (v, _))| (cc, v)).collect();

    // -- final assignment: every element moves to its class target ------
    let mut out = Assignment::new();
    for c in &cells {
        if let Some(t) = targ.get(&class_of[c]) {
            if observed[c] != *t {
                out.insert(*c, t.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::{repair_serial, RepairAlgorithm};
    use crate::EquivalenceClassRepair;
    use bigdansing_rules::{Fix, Violation};
    use proptest::prelude::*;

    fn fd_detected(a: u64, va: &str, b: u64, vb: &str, attr: usize) -> Detected {
        let ca = Cell::new(a, attr);
        let cb = Cell::new(b, attr);
        let mut v = Violation::new("fd");
        v.add_cell(ca, Value::str(va));
        v.add_cell(cb, Value::str(vb));
        (
            v,
            vec![Fix::assign_cell(ca, Value::str(va), cb, Value::str(vb))],
        )
    }

    #[test]
    fn matches_centralized_on_example1() {
        let detected = vec![
            fd_detected(2, "LA", 4, "SF", 2),
            fd_detected(6, "LA", 4, "SF", 2),
        ];
        let engine = Engine::parallel(4);
        let dist = repair_distributed_equivalence(&engine, &detected);
        let central = repair_serial(&detected, &EquivalenceClassRepair);
        assert_eq!(dist, central);
        assert_eq!(dist[&Cell::new(4, 2)], Value::str("LA"));
    }

    #[test]
    fn const_candidates_count_once() {
        let ca = Cell::new(1, 0);
        let cb = Cell::new(2, 0);
        let mut v = Violation::new("cfd");
        v.add_cell(ca, Value::str("B"));
        v.add_cell(cb, Value::str("Z"));
        let fixes = vec![
            Fix::assign_cell(ca, Value::str("B"), cb, Value::str("Z")),
            Fix::assign_const(ca, Value::str("B"), Value::str("Z")),
            Fix::assign_const(ca, Value::str("B"), Value::str("Z")), // duplicate
        ];
        let engine = Engine::sequential();
        let dist = repair_distributed_equivalence(&engine, &[(v.clone(), fixes.clone())]);
        let central = EquivalenceClassRepair.repair(&[(v, fixes)]);
        assert_eq!(dist, central);
        assert_eq!(dist[&ca], Value::str("Z"));
    }

    #[test]
    fn empty_input() {
        let engine = Engine::sequential();
        assert!(repair_distributed_equivalence(&engine, &[]).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn distributed_equals_centralized(
            // random small FD-violation batches over a few cells/values
            pairs in prop::collection::vec(
                ((0u64..8, 0u64..8), prop::sample::select(vec!["A", "B", "C"]),
                 prop::sample::select(vec!["A", "B", "C"])), 0..12)
        ) {
            let detected: Vec<Detected> = pairs
                .into_iter()
                .filter(|((a, b), _, _)| a != b)
                .map(|((a, b), va, vb)| fd_detected(a, va, b, vb, 1))
                .collect();
            let engine = Engine::parallel(3);
            let dist = repair_distributed_equivalence(&engine, &detected);
            let central = repair_serial(&detected, &EquivalenceClassRepair);
            prop_assert_eq!(dist, central);
        }
    }
}
