//! The scalable equivalence-class algorithm (§5.2).
//!
//! "We extend the equivalence class algorithm to a distributed setting
//! by modeling it as a distributed word counting algorithm … with two
//! map-reduce sequences":
//!
//! * round 1 maps each possible fix's elements to
//!   `⟨(ccid, value), 1⟩` — counting each element's value **once** even
//!   if it appears in several fixes — and reduces to per-(class, value)
//!   frequencies;
//! * round 2 re-keys by `ccid` and reduces to the highest-frequency
//!   value, which becomes `targ(E)` for every element of the class.
//!
//! Classes (`ccid`) come from the semi-naive BSP connected components
//! over the equality-fix graph, exactly the GraphX step of §5.1. Cells
//! are interned through a [`KeyDict`] into dense `u32` node ids, so the
//! class map is a flat `node_labels` vector rather than a hash map, and
//! isolated cells fall out as singleton classes for free (a node with
//! no incident edge keeps its own id as its label). The result is
//! bit-identical to the centralized [`crate::EquivalenceClassRepair`]
//! (both break frequency ties toward the smaller value), which the
//! parity tests assert.

use crate::cc::{components_bsp, EdgeList};
use crate::{Assignment, Detected};
use bigdansing_common::error::Result;
use bigdansing_common::keys::KeyDict;
use bigdansing_common::{Cell, Value};
use bigdansing_dataflow::{Engine, PDataset};
use bigdansing_rules::{FixRhs, Op};
use std::collections::{BTreeSet, HashMap};

/// Run the distributed equivalence-class repair on `engine`.
pub fn repair_distributed_equivalence(
    engine: &Engine,
    detected: &[Detected],
) -> Result<Assignment> {
    // -- class formation: BSP connected components over Eq-fix edges --
    // Interning is single-threaded here, so ordinals are dense AND
    // deterministic (first-appearance order).
    let dict: KeyDict<Cell> = KeyDict::new();
    let mut cells: Vec<Cell> = Vec::new();
    let mut observed: Vec<Value> = Vec::new();
    let intern = |c: Cell, v: &Value, cells: &mut Vec<Cell>, observed: &mut Vec<Value>| -> u32 {
        let id = dict.encode(c);
        if id.ordinal() as usize == cells.len() {
            cells.push(c);
            observed.push(v.clone());
        }
        id.ordinal()
    };
    let mut graph = EdgeList::with_nodes(0);
    let mut consts: BTreeSet<(u32, Value)> = BTreeSet::new();
    for (violation, fixes) in detected {
        for (c, v) in violation.cells() {
            intern(*c, v, &mut cells, &mut observed);
        }
        for fix in fixes {
            if fix.op != Op::Eq {
                continue;
            }
            let left = intern(fix.left, &fix.left_value, &mut cells, &mut observed);
            match &fix.rhs {
                FixRhs::Cell(rc, rv) => {
                    let right = intern(*rc, rv, &mut cells, &mut observed);
                    graph.push_edge([left, right]);
                }
                FixRhs::Const(k) => {
                    consts.insert((left, k.clone()));
                }
            }
        }
    }
    // untouched cells are singleton classes: their identity label needs
    // no edge, only a node slot
    graph.num_nodes = cells.len();
    let labels = components_bsp(engine, &graph)?.node_labels;

    // -- map-reduce round 1: ⟨(ccid, value), count⟩ with count-once ----
    // map: one record per element (deduplicated) and per const candidate
    let mut records: Vec<((u32, Value), u64)> = (0..cells.len())
        .map(|i| ((labels[i], observed[i].clone()), 1u64))
        .collect();
    records.extend(
        consts
            .iter()
            .map(|(n, k)| ((labels[*n as usize], k.clone()), 1u64)),
    );
    let counted: PDataset<((u32, Value), u64)> = PDataset::from_vec(engine.clone(), records)
        .reduce_by_key(|(k, _)| k.clone(), |(_, n)| n, |a, b| a + b);

    // -- map-reduce round 2: ⟨ccid, (value, count)⟩ → max-frequency -----
    let targets: Vec<(u32, (Value, u64))> = counted
        .map(|((cc, value), count)| (cc, (value, count)))
        .reduce_by_key(
            |(cc, _)| *cc,
            |(_, vc)| vc,
            |(va, ca), (vb, cb)| {
                // higher count wins; ties toward the smaller value
                match ca.cmp(&cb) {
                    std::cmp::Ordering::Less => (vb, cb),
                    std::cmp::Ordering::Greater => (va, ca),
                    std::cmp::Ordering::Equal => {
                        if va <= vb {
                            (va, ca)
                        } else {
                            (vb, cb)
                        }
                    }
                }
            },
        )
        .collect();
    let targ: HashMap<u32, Value> = targets.into_iter().map(|(cc, (v, _))| (cc, v)).collect();

    // -- final assignment: every element moves to its class target ------
    let mut out = Assignment::new();
    for (i, cell) in cells.iter().enumerate() {
        if let Some(t) = targ.get(&labels[i]) {
            if observed[i] != *t {
                out.insert(*cell, t.clone());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::repair_serial;
    use crate::EquivalenceClassRepair;
    use bigdansing_rules::{Fix, Violation};
    use proptest::prelude::*;

    fn fd_detected(a: u64, va: &str, b: u64, vb: &str, attr: usize) -> Detected {
        let ca = Cell::new(a, attr);
        let cb = Cell::new(b, attr);
        let mut v = Violation::new("fd");
        v.add_cell(ca, Value::str(va));
        v.add_cell(cb, Value::str(vb));
        (
            v,
            vec![Fix::assign_cell(ca, Value::str(va), cb, Value::str(vb))],
        )
    }

    #[test]
    fn matches_centralized_on_example1() {
        let detected = vec![
            fd_detected(2, "LA", 4, "SF", 2),
            fd_detected(6, "LA", 4, "SF", 2),
        ];
        let engine = Engine::parallel(4);
        let dist = repair_distributed_equivalence(&engine, &detected).unwrap();
        let central = repair_serial(&detected, &EquivalenceClassRepair);
        assert_eq!(dist, central);
        assert_eq!(dist[&Cell::new(4, 2)], Value::str("LA"));
    }

    #[test]
    fn const_candidates_count_once() {
        let ca = Cell::new(1, 0);
        let cb = Cell::new(2, 0);
        let mut v = Violation::new("cfd");
        v.add_cell(ca, Value::str("B"));
        v.add_cell(cb, Value::str("Z"));
        let fixes = vec![
            Fix::assign_cell(ca, Value::str("B"), cb, Value::str("Z")),
            Fix::assign_const(ca, Value::str("B"), Value::str("Z")),
            Fix::assign_const(ca, Value::str("B"), Value::str("Z")), // duplicate
        ];
        let engine = Engine::sequential();
        let detected = vec![(v, fixes)];
        let dist = repair_distributed_equivalence(&engine, &detected).unwrap();
        let central = repair_serial(&detected, &EquivalenceClassRepair);
        assert_eq!(dist, central);
        assert_eq!(dist[&ca], Value::str("Z"));
    }

    #[test]
    fn empty_input() {
        let engine = Engine::sequential();
        assert!(repair_distributed_equivalence(&engine, &[])
            .unwrap()
            .is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn distributed_equals_centralized(
            // random small FD-violation batches over a few cells/values
            pairs in prop::collection::vec(
                ((0u64..8, 0u64..8), prop::sample::select(vec!["A", "B", "C"]),
                 prop::sample::select(vec!["A", "B", "C"])), 0..12)
        ) {
            let detected: Vec<Detected> = pairs
                .into_iter()
                .filter(|((a, b), _, _)| a != b)
                .map(|((a, b), va, vb)| fd_detected(a, va, b, vb, 1))
                .collect();
            let engine = Engine::parallel(3);
            let dist = repair_distributed_equivalence(&engine, &detected).unwrap();
            let central = repair_serial(&detected, &EquivalenceClassRepair);
            prop_assert_eq!(dist, central);
        }
    }
}
