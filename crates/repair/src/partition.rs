//! Dealing with big connected components (§5.1, Example 2).
//!
//! When a component exceeds one worker's capacity the paper splits it
//! with a k-way hypergraph partitioner and repairs the parts on distinct
//! machines, assigning one part the **master** role: master changes are
//! immutable; a slave change contradicting a master-involved repair is
//! undone and retried in the next iteration, so "the algorithm always
//! reaches a fix point … because an updated value cannot change in the
//! following iterations."
//!
//! The partitioner here is a greedy affinity heuristic (edges go to the
//! part sharing the most cells, ties to the smallest part) standing in
//! for the multilevel k-way algorithm of Karypis & Kumar \[22\]; the
//! master/slave protocol is implemented faithfully.

use crate::blackbox::RepairAlgorithm;
use crate::fixeval::{overlay_detected, violation_resolved};
use crate::{Assignment, Detected};
use bigdansing_common::Cell;
use std::collections::{HashMap, HashSet};

/// Configuration for the partitioned repair.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of parts (k).
    pub k: usize,
    /// Maximum master/slave iterations before giving up on the
    /// still-contradicted residue.
    pub max_iterations: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            k: 4,
            max_iterations: 8,
        }
    }
}

/// Greedy balanced k-way split of a component's violations. Returns
/// `k` (possibly empty) groups of indices into `component`.
pub fn partition_component(component: &[&Detected], k: usize) -> Vec<Vec<usize>> {
    let k = k.max(1);
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut part_cells: Vec<HashSet<Cell>> = vec![HashSet::new(); k];
    let target = component.len().div_ceil(k);
    for (i, (v, fixes)) in component.iter().map(|d| (&d.0, &d.1)).enumerate() {
        let cells: HashSet<Cell> = v
            .cells()
            .iter()
            .map(|(c, _)| *c)
            .chain(fixes.iter().flat_map(|f| f.cells()))
            .collect();
        // highest shared-cell affinity among parts with remaining capacity,
        // ties to the emptiest part
        let mut best = 0usize;
        let mut best_key = (i64::MIN, i64::MIN);
        for p in 0..k {
            if parts[p].len() >= target && parts.iter().any(|q| q.len() < target) {
                continue;
            }
            let shared = cells.intersection(&part_cells[p]).count() as i64;
            let key = (shared, -(parts[p].len() as i64));
            if key > best_key {
                best_key = key;
                best = p;
            }
        }
        parts[best].push(i);
        part_cells[best].extend(cells);
    }
    parts
}

/// Repair an oversized component with the master/slave protocol.
///
/// The only place the repair path materializes violation copies: each
/// part's pending violations are overlaid with the partially repaired
/// data before re-running the black box (metered as deep clones via
/// [`overlay_detected`]).
pub fn repair_partitioned(
    algo: &dyn RepairAlgorithm,
    component: &[&Detected],
    config: PartitionConfig,
) -> Assignment {
    let parts = partition_component(component, config.k);
    let mut global = Assignment::new();
    let mut immutable: HashSet<Cell> = HashSet::new();
    for iteration in 0..config.max_iterations.max(1) {
        // every part repairs its still-unresolved violations in
        // isolation, observing the partially repaired data (overlay) and
        // with immutable values reinforced as constant candidates so the
        // cost function pulls toward them
        let mut proposals: Vec<(usize, Assignment)> = Vec::new();
        for (p, idxs) in parts.iter().enumerate() {
            let pending: Vec<Detected> = idxs
                .iter()
                .map(|&i| component[i])
                .filter(|d| !violation_resolved(d, &global))
                .map(|d| {
                    let mut biased = overlay_detected(d, &global);
                    for (c, _) in d.0.cells() {
                        if immutable.contains(c) {
                            if let Some(v) = global.get(c) {
                                biased.1.push(bigdansing_rules::Fix::assign_const(
                                    *c,
                                    v.clone(),
                                    v.clone(),
                                ));
                            }
                        }
                    }
                    biased
                })
                .collect();
            if pending.is_empty() {
                continue;
            }
            let pending_refs: Vec<&Detected> = pending.iter().collect();
            proposals.push((p, algo.repair(&pending_refs)));
        }
        if proposals.is_empty() {
            break;
        }
        // union of the results with the extra consistency test: the
        // master's (part 0, and transitively, earlier iterations')
        // changes are immutable; contradicting slave changes are undone.
        let mut changed = false;
        let mut claimed_this_round: HashMap<Cell, usize> = HashMap::new();
        for (p, assign) in proposals {
            for (cell, value) in assign {
                if immutable.contains(&cell) {
                    if global.get(&cell) != Some(&value) {
                        continue; // slave repair undone, retried next round
                    }
                    continue;
                }
                if let Some(&owner) = claimed_this_round.get(&cell) {
                    if owner != p {
                        continue; // two slaves raced; first (lower part) wins
                    }
                }
                claimed_this_round.insert(cell, p);
                if global.get(&cell) != Some(&value) {
                    global.insert(cell, value);
                    changed = true;
                }
            }
        }
        // everything applied so far becomes immutable for later rounds —
        // "an updated value cannot change in the following iterations"
        immutable.extend(global.keys().copied());
        let _ = iteration;
        if !changed {
            break;
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::EquivalenceClassRepair;
    use crate::hyper::HypergraphRepair;
    use bigdansing_common::Value;
    use bigdansing_rules::{Fix, Violation};

    fn refs(comp: &[Detected]) -> Vec<&Detected> {
        comp.iter().collect()
    }

    fn fd_detected(a: u64, va: &str, b: u64, vb: &str) -> Detected {
        let ca = Cell::new(a, 2);
        let cb = Cell::new(b, 2);
        let mut v = Violation::new("fd");
        v.add_cell(ca, Value::str(va));
        v.add_cell(cb, Value::str(vb));
        (
            v,
            vec![Fix::assign_cell(ca, Value::str(va), cb, Value::str(vb))],
        )
    }

    #[test]
    fn partition_is_balanced_and_complete() {
        let comp: Vec<Detected> = (0..20).map(|i| fd_detected(i, "A", i + 1, "B")).collect();
        let parts = partition_component(&refs(&comp), 4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        for p in &parts {
            assert!(p.len() <= 6, "part too large: {}", p.len());
        }
        // no index duplicated
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn affinity_groups_shared_cells() {
        // two clusters of violations over disjoint cells
        let mut comp = Vec::new();
        for _ in 0..4 {
            comp.push(fd_detected(1, "A", 2, "B"));
        }
        for _ in 0..4 {
            comp.push(fd_detected(100, "X", 101, "Y"));
        }
        let parts = partition_component(&refs(&comp), 2);
        // each part should be pure (all same cluster)
        for p in parts.iter().filter(|p| !p.is_empty()) {
            let first_cluster = comp[p[0]].0.cells()[0].0.tuple < 50;
            assert!(p
                .iter()
                .all(|&i| (comp[i].0.cells()[0].0.tuple < 50) == first_cluster));
        }
    }

    #[test]
    fn partitioned_repair_resolves_everything() {
        let _serial = crate::testsync::lock();
        let comp: Vec<Detected> = (0..12).map(|i| fd_detected(i, "LA", i + 1, "SF")).collect();
        let assign = repair_partitioned(
            &EquivalenceClassRepair,
            &refs(&comp),
            PartitionConfig {
                k: 3,
                max_iterations: 8,
            },
        );
        for d in &comp {
            assert!(violation_resolved(d, &assign), "unresolved {:?}", d.0);
        }
    }

    #[test]
    fn master_values_never_flip() {
        let _serial = crate::testsync::lock();
        // Example 2's shape: overlapping violations whose naive split
        // repairs contradict. With the protocol, once a cell is set it
        // stays set.
        let comp: Vec<Detected> = vec![
            fd_detected(1, "A", 2, "B"),
            fd_detected(2, "B", 3, "C"),
            fd_detected(3, "C", 4, "D"),
            fd_detected(4, "D", 5, "E"),
        ];
        let a1 = repair_partitioned(
            &HypergraphRepair::default(),
            &refs(&comp),
            PartitionConfig {
                k: 2,
                max_iterations: 4,
            },
        );
        // run again: deterministic
        let a2 = repair_partitioned(
            &HypergraphRepair::default(),
            &refs(&comp),
            PartitionConfig {
                k: 2,
                max_iterations: 4,
            },
        );
        assert_eq!(a1, a2);
        for d in &comp {
            assert!(violation_resolved(d, &a1));
        }
    }

    #[test]
    fn k_one_degenerates_to_plain_repair() {
        let _serial = crate::testsync::lock();
        let comp: Vec<Detected> = vec![fd_detected(1, "A", 2, "B")];
        let direct = EquivalenceClassRepair.repair(&refs(&comp));
        let part = repair_partitioned(
            &EquivalenceClassRepair,
            &refs(&comp),
            PartitionConfig {
                k: 1,
                max_iterations: 2,
            },
        );
        assert_eq!(direct, part);
    }
}
