//! The centralized equivalence-class algorithm (Bohannon et al. \[5\],
//! §5.2 of the paper).
//!
//! "Group all elements that should be equivalent together, then decide
//! how to assign values to each group": equality fixes union their cells
//! into classes; each class gets the target value that minimizes the
//! cost function of §2.1 — with exact-match distance 0 this is the most
//! frequent observed value (constants proposed by fixes count as
//! candidates too). Ties break toward the smallest value so the
//! distributed implementation can match bit-for-bit.

use crate::blackbox::RepairAlgorithm;
use crate::cc::UnionFind;
use crate::{Assignment, Detected};
use bigdansing_common::{Cell, Value};
use bigdansing_rules::{FixRhs, Op};
use std::collections::{BTreeMap, HashMap};

/// The centralized equivalence-class repair algorithm.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceClassRepair;

/// Pick the majority value; ties break toward the smaller value.
pub(crate) fn majority_value(counts: &BTreeMap<Value, usize>) -> Option<Value> {
    counts
        .iter()
        .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then_with(|| vb.cmp(va)))
        .map(|(v, _)| v.clone())
}

/// Build the equivalence classes and per-class candidate-value counts
/// from the equality fixes in `detected`. Returns
/// `(class id per cell, observed value per cell, counts per class)`.
///
/// Candidate counting matches §5.2: each *element* contributes its value
/// once, and constants proposed by fixes contribute once per class.
/// `(class id per cell, observed value per cell, value counts per class)`.
pub(crate) type Classes = (
    HashMap<Cell, u64>,
    HashMap<Cell, Value>,
    HashMap<u64, BTreeMap<Value, usize>>,
);

pub(crate) fn build_classes(detected: &[&Detected]) -> Classes {
    let mut uf = UnionFind::new();
    let mut observed: HashMap<Cell, Value> = HashMap::new();
    // deduplicated: a cell proposing the same constant in several fixes
    // contributes one candidate (mirrors §5.2's count-once rule)
    let mut consts: std::collections::BTreeSet<(Cell, Value)> = Default::default();
    for (violation, fixes) in detected.iter().map(|d| (&d.0, &d.1)) {
        for (c, v) in violation.cells() {
            observed.entry(*c).or_insert_with(|| v.clone());
        }
        for fix in fixes {
            if fix.op != Op::Eq {
                continue; // the equivalence-class algorithm handles = fixes
            }
            observed
                .entry(fix.left)
                .or_insert_with(|| fix.left_value.clone());
            match &fix.rhs {
                FixRhs::Cell(rc, rv) => {
                    observed.entry(*rc).or_insert_with(|| rv.clone());
                    uf.union(fix.left.encode(), rc.encode());
                }
                FixRhs::Const(k) => {
                    uf.find(fix.left.encode());
                    consts.insert((fix.left, k.clone()));
                }
            }
        }
    }
    // class id per cell (only cells that participate in some Eq fix)
    let mut class_of: HashMap<Cell, u64> = HashMap::new();
    let mut counts: HashMap<u64, BTreeMap<Value, usize>> = HashMap::new();
    let mut cells: Vec<Cell> = observed.keys().copied().collect();
    cells.sort();
    for cell in cells {
        let code = cell.encode();
        // only cells actually unioned (or with const candidates) matter,
        // but including singletons is harmless: their majority value is
        // their own value, producing no assignment.
        let class = uf.find(code);
        class_of.insert(cell, class);
        *counts
            .entry(class)
            .or_default()
            .entry(observed[&cell].clone())
            .or_insert(0) += 1;
    }
    for (cell, k) in consts {
        let class = class_of[&cell];
        *counts.entry(class).or_default().entry(k).or_insert(0) += 1;
    }
    (class_of, observed, counts)
}

impl RepairAlgorithm for EquivalenceClassRepair {
    fn name(&self) -> &str {
        "equivalence-class"
    }

    fn repair(&self, component: &[&Detected]) -> Assignment {
        let (class_of, observed, counts) = build_classes(component);
        let targets: HashMap<u64, Value> = counts
            .iter()
            .filter_map(|(cc, c)| majority_value(c).map(|v| (*cc, v)))
            .collect();
        let mut out = Assignment::new();
        for (cell, class) in &class_of {
            if let Some(target) = targets.get(class) {
                if observed[cell] != *target {
                    out.insert(*cell, target.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blackbox::repair_serial;
    use bigdansing_rules::{Fix, Violation};

    fn city_cell(t: u64) -> Cell {
        Cell::new(t, 2)
    }

    /// φF on Example 1: cities of t2/t4 and t4/t6 should be equal.
    fn example1_detected() -> Vec<Detected> {
        let mk = |a: u64, va: &str, b: u64, vb: &str| -> Detected {
            let mut v = Violation::new("fd");
            v.add_cell(city_cell(a), Value::str(va));
            v.add_cell(city_cell(b), Value::str(vb));
            let f = Fix::assign_cell(city_cell(a), Value::str(va), city_cell(b), Value::str(vb));
            (v, vec![f])
        };
        vec![mk(2, "LA", 4, "SF"), mk(6, "LA", 4, "SF")]
    }

    #[test]
    fn majority_wins_la_over_sf() {
        let assign = repair_serial(&example1_detected(), &EquivalenceClassRepair);
        // class {t2,t4,t6}.city with values {LA, SF, LA} → target LA
        assert_eq!(assign.len(), 1);
        assert_eq!(assign[&city_cell(4)], Value::str("LA"));
    }

    #[test]
    fn tie_breaks_to_smaller_value() {
        let mut v = Violation::new("fd");
        v.add_cell(city_cell(1), Value::str("B"));
        v.add_cell(city_cell(2), Value::str("A"));
        let f = Fix::assign_cell(city_cell(1), Value::str("B"), city_cell(2), Value::str("A"));
        let assign = repair_serial(&[(v, vec![f])], &EquivalenceClassRepair);
        assert_eq!(assign.len(), 1);
        assert_eq!(assign[&city_cell(1)], Value::str("A"));
    }

    #[test]
    fn const_fixes_add_candidates() {
        // two cells tied 1-1; a const fix proposing one of the values
        // tips the majority
        let mut v = Violation::new("cfd");
        v.add_cell(city_cell(1), Value::str("B"));
        v.add_cell(city_cell(2), Value::str("Z"));
        let fixes = vec![
            Fix::assign_cell(city_cell(1), Value::str("B"), city_cell(2), Value::str("Z")),
            Fix::assign_const(city_cell(1), Value::str("B"), Value::str("Z")),
        ];
        let assign = repair_serial(&[(v, fixes)], &EquivalenceClassRepair);
        assert_eq!(assign[&city_cell(1)], Value::str("Z"));
        assert!(!assign.contains_key(&city_cell(2)));
    }

    #[test]
    fn non_eq_fixes_are_ignored() {
        let mut v = Violation::new("dc");
        v.add_cell(Cell::new(1, 5), Value::Int(10));
        v.add_cell(Cell::new(2, 5), Value::Int(20));
        let f = Fix::compare(
            Cell::new(1, 5),
            Value::Int(10),
            Op::Ge,
            FixRhs::Cell(Cell::new(2, 5), Value::Int(20)),
        );
        let assign = repair_serial(&[(v, vec![f])], &EquivalenceClassRepair);
        assert!(assign.is_empty());
    }

    #[test]
    fn clean_input_produces_no_assignments() {
        assert!(repair_serial(&[], &EquivalenceClassRepair).is_empty());
    }

    #[test]
    fn disjoint_classes_repair_independently() {
        let mut d = example1_detected();
        // a second, unrelated class: t10/t11 state cells
        let sc = |t: u64| Cell::new(t, 3);
        let mut v = Violation::new("fd2");
        v.add_cell(sc(10), Value::str("CA"));
        v.add_cell(sc(11), Value::str("CA2"));
        d.push((
            v,
            vec![Fix::assign_cell(
                sc(10),
                Value::str("CA"),
                sc(11),
                Value::str("CA2"),
            )],
        ));
        let assign = repair_serial(&d, &EquivalenceClassRepair);
        assert_eq!(assign.len(), 2);
        assert_eq!(assign[&city_cell(4)], Value::str("LA"));
        // CA vs CA2 tie → smaller value CA wins; cell 11 changes
        assert_eq!(assign[&sc(11)], Value::str("CA"));
    }
}
