//! Connected components of the violation hypergraph.
//!
//! The paper uses GraphX, whose Pregel/BSP model processes the graph in
//! synchronized supersteps (§5.1). [`components_bsp`] reproduces that:
//! label propagation where, each superstep, every hyperedge takes the
//! minimum label of its members and every node takes the minimum label
//! of its incident edges — run as parallel min-aggregations over a
//! partitioning fixed up front (GraphX-style partition reuse).
//! [`components_union_find`] is the sequential oracle.

use bigdansing_dataflow::Engine;
use std::collections::HashMap;

/// Disjoint-set forest over arbitrary `u64` node ids.
pub struct UnionFind {
    parent: HashMap<u64, u64>,
}

impl UnionFind {
    /// An empty forest.
    pub fn new() -> UnionFind {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    /// Find with path compression.
    pub fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    /// Union by arbitrary order (smaller root wins, keeps labels
    /// deterministic).
    pub fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(hi, lo);
    }
}

impl Default for UnionFind {
    fn default() -> Self {
        UnionFind::new()
    }
}

/// Component label (minimum member node id) per edge, via union-find.
pub fn components_union_find(edges: &[Vec<u64>]) -> Vec<u64> {
    let mut uf = UnionFind::new();
    for edge in edges {
        for w in edge.windows(2) {
            uf.union(w[0], w[1]);
        }
        if let Some(&first) = edge.first() {
            uf.find(first);
        }
    }
    edges
        .iter()
        .map(|e| e.first().map(|&n| uf.find(n)).unwrap_or(u64::MAX))
        .collect()
}

/// Component label per edge via BSP label propagation on the engine.
///
/// Each superstep is two parallel min-aggregations (node→edge and
/// edge→node) over a *fixed* partitioning — like GraphX, the bipartite
/// incidence structure is partitioned once and reused across
/// supersteps instead of reshuffled, so a superstep is pure
/// computation. Iteration stops when no node label changes — the
/// Pregel-style fixed point.
pub fn components_bsp(engine: &Engine, edges: &[Vec<u64>]) -> Vec<u64> {
    use bigdansing_dataflow::pool::par_map_indexed;
    if edges.is_empty() {
        return Vec::new();
    }
    // dense node ids (one-time "partitioning" pass)
    let mut node_index: HashMap<u64, u32> = HashMap::new();
    let mut node_ids: Vec<u64> = Vec::new();
    let dense_edges: Vec<Vec<u32>> = edges
        .iter()
        .map(|e| {
            e.iter()
                .map(|&n| {
                    *node_index.entry(n).or_insert_with(|| {
                        node_ids.push(n);
                        (node_ids.len() - 1) as u32
                    })
                })
                .collect()
        })
        .collect();
    // fixed incidence partitioning: edges chunked once, nodes chunked once
    let workers = engine.workers();
    let nparts = engine.default_partitions();
    let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); node_ids.len()];
    for (e, members) in dense_edges.iter().enumerate() {
        for &n in members {
            incidence[n as usize].push(e as u32);
        }
    }
    let edge_chunks = chunk_ranges(dense_edges.len(), nparts);
    let node_chunks = chunk_ranges(node_ids.len(), nparts);

    // initial labels: each node labels itself with its original id
    let mut node_label: Vec<u64> = node_ids;
    let mut edge_label: Vec<u64> = vec![u64::MAX; dense_edges.len()];
    loop {
        // superstep part 1: edges adopt the min label of their members
        let nl = &node_label;
        let de = &dense_edges;
        let new_edges: Vec<Vec<u64>> =
            par_map_indexed(workers, edge_chunks.clone(), |_, (lo, hi)| {
                (lo..hi)
                    .map(|e| {
                        de[e]
                            .iter()
                            .map(|&n| nl[n as usize])
                            .min()
                            .unwrap_or(u64::MAX)
                    })
                    .collect()
            });
        for ((lo, _), labels) in edge_chunks.iter().zip(new_edges) {
            edge_label[*lo..*lo + labels.len()].copy_from_slice(&labels);
        }
        // superstep part 2: nodes adopt the min label of incident edges
        let el = &edge_label;
        let inc = &incidence;
        let nl = &node_label;
        let new_nodes: Vec<Vec<u64>> =
            par_map_indexed(workers, node_chunks.clone(), |_, (lo, hi)| {
                (lo..hi)
                    .map(|n| {
                        inc[n]
                            .iter()
                            .map(|&e| el[e as usize])
                            .min()
                            .unwrap_or(u64::MAX)
                            .min(nl[n])
                    })
                    .collect()
            });
        let mut changed = false;
        for ((lo, _), labels) in node_chunks.iter().zip(new_nodes) {
            for (i, l) in labels.into_iter().enumerate() {
                if node_label[lo + i] != l {
                    node_label[lo + i] = l;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    edge_label
}

/// Split `0..n` into at most `parts` contiguous `(lo, hi)` ranges.
fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Group edge indices by component label, ordered by label for
/// determinism.
pub fn group_by_component(labels: &[u64]) -> Vec<Vec<usize>> {
    let mut groups: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for (i, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn normalize(labels: &[u64]) -> Vec<Vec<usize>> {
        group_by_component(labels)
    }

    #[test]
    fn figure7_components() {
        // v1 = {1,2}, v2 = {2,3}, v3 = {4,5}: CC1 = {v1,v2}, CC2 = {v3}
        let edges = vec![vec![1, 2], vec![2, 3], vec![4, 5]];
        let uf = components_union_find(&edges);
        assert_eq!(uf[0], uf[1]);
        assert_ne!(uf[0], uf[2]);
        let e = Engine::parallel(2);
        let bsp = components_bsp(&e, &edges);
        assert_eq!(normalize(&uf), normalize(&bsp));
        assert_eq!(group_by_component(&uf), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn long_chain_converges() {
        // a path of 50 edges — stresses multi-superstep propagation
        let edges: Vec<Vec<u64>> = (0..50).map(|i| vec![i, i + 1]).collect();
        let e = Engine::parallel(4);
        let bsp = components_bsp(&e, &edges);
        assert!(bsp.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<Vec<u64>> = vec![];
        assert!(components_union_find(&none).is_empty());
        let e = Engine::sequential();
        assert!(components_bsp(&e, &none).is_empty());
        let single = vec![vec![7]];
        assert_eq!(components_union_find(&single), vec![7]);
        assert_eq!(components_bsp(&e, &single), vec![7]);
    }

    #[test]
    fn union_find_basic_properties() {
        let mut uf = UnionFind::new();
        assert_eq!(uf.find(5), 5);
        uf.union(5, 9);
        uf.union(9, 2);
        assert_eq!(uf.find(5), uf.find(2));
        assert_eq!(uf.find(5), 2, "smallest id becomes the root");
        uf.union(5, 2); // no-op union
        assert_eq!(uf.find(9), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn bsp_matches_union_find(edges in prop::collection::vec(
            prop::collection::vec(0u64..30, 1..4), 0..25)) {
            let uf = components_union_find(&edges);
            let e = Engine::parallel(3);
            let bsp = components_bsp(&e, &edges);
            prop_assert_eq!(normalize(&uf), normalize(&bsp));
        }
    }
}
