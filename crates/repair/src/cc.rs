//! Connected components of the violation hypergraph.
//!
//! The paper uses GraphX, whose Pregel/BSP model processes the graph in
//! synchronized supersteps (§5.1). [`components_bsp`] reproduces that
//! over a CSR-encoded bipartite incidence structure ([`EdgeList`]) with
//! dense `u32` node ids, evaluated **semi-naively**: each superstep
//! propagates labels only from the frontier of nodes whose label
//! changed last round, and iteration exits as soon as the frontier
//! drains — the fixpoint trick of Datalog engines, applied to label
//! propagation. [`components_union_find`] is the sequential oracle.

use bigdansing_common::error::Result;
use bigdansing_common::metrics::Metrics;
use bigdansing_dataflow::Engine;
use std::collections::HashMap;

/// Disjoint-set forest over arbitrary `u64` node ids.
pub struct UnionFind {
    parent: HashMap<u64, u64>,
}

impl UnionFind {
    /// An empty forest.
    pub fn new() -> UnionFind {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    /// Find with path compression.
    pub fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    /// Union by arbitrary order (smaller root wins, keeps labels
    /// deterministic).
    pub fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(hi, lo);
    }
}

impl Default for UnionFind {
    fn default() -> Self {
        UnionFind::new()
    }
}

/// Component label (minimum member node id) per edge, via union-find.
pub fn components_union_find(edges: &[Vec<u64>]) -> Vec<u64> {
    let mut uf = UnionFind::new();
    for edge in edges {
        for w in edge.windows(2) {
            uf.union(w[0], w[1]);
        }
        if let Some(&first) = edge.first() {
            uf.find(first);
        }
    }
    edges
        .iter()
        .map(|e| e.first().map(|&n| uf.find(n)).unwrap_or(u64::MAX))
        .collect()
}

/// The hypergraph's incidence structure in CSR form: edge `i`'s member
/// node ids are `members[offsets[i]..offsets[i+1]]`, node ids are dense
/// `u32`s in `0..num_nodes`. Built once, reused across supersteps —
/// the GraphX-style "partition once" property, without per-round
/// hash maps.
#[derive(Debug, Default, Clone)]
pub struct EdgeList {
    /// Number of distinct nodes.
    pub num_nodes: usize,
    /// CSR offsets, length `num_edges + 1`.
    pub offsets: Vec<u32>,
    /// Concatenated member node ids.
    pub members: Vec<u32>,
}

impl EdgeList {
    /// An edge list with no edges over `num_nodes` nodes.
    pub fn with_nodes(num_nodes: usize) -> EdgeList {
        EdgeList {
            num_nodes,
            offsets: vec![0],
            members: Vec::new(),
        }
    }

    /// Append one edge given its member node ids (need not be unique).
    pub fn push_edge(&mut self, members: impl IntoIterator<Item = u32>) {
        let start = self.members.len();
        self.members.extend(members);
        self.members[start..].sort_unstable();
        let mut w = start;
        for r in start..self.members.len() {
            let m = self.members[r];
            if w == start || self.members[w - 1] != m {
                self.members[w] = m;
                w += 1;
            }
        }
        self.members.truncate(w);
        for &m in &self.members[start..] {
            self.num_nodes = self.num_nodes.max(m as usize + 1);
        }
        self.offsets.push(self.members.len() as u32);
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Member node ids of edge `i`.
    pub fn edge(&self, i: usize) -> &[u32] {
        &self.members[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Densify arbitrary `u64` node ids into an [`EdgeList`], returning
    /// the original id per dense node (first-appearance order).
    pub fn from_edges(edges: &[Vec<u64>]) -> (EdgeList, Vec<u64>) {
        let mut index: HashMap<u64, u32> = HashMap::new();
        let mut node_ids: Vec<u64> = Vec::new();
        let mut el = EdgeList::with_nodes(0);
        for edge in edges {
            el.push_edge(edge.iter().map(|&n| {
                *index.entry(n).or_insert_with(|| {
                    node_ids.push(n);
                    (node_ids.len() - 1) as u32
                })
            }));
        }
        el.num_nodes = node_ids.len();
        (el, node_ids)
    }
}

/// The fixpoint [`components_bsp`] converges to.
#[derive(Debug, Clone)]
pub struct BspComponents {
    /// Component label per edge: the minimum dense node id reachable
    /// from the edge (`u32::MAX` for empty edges).
    pub edge_labels: Vec<u32>,
    /// Component label per node.
    pub node_labels: Vec<u32>,
    /// Supersteps executed until the frontier drained.
    pub supersteps: u64,
}

/// Below this many dirty items a superstep half runs inline; above it,
/// the work is chunked across the engine's workers.
const PARALLEL_THRESHOLD: usize = 4 * 1024;

/// Component labels via semi-naive BSP label propagation on the engine.
///
/// Each superstep is two min-aggregations (node→edge, edge→node) over
/// the fixed CSR incidence, but only the *dirty* part of it: edges
/// touching a frontier node re-min, nodes touching a changed edge
/// re-min, and the next frontier is exactly the nodes whose label
/// decreased. Iteration exits when the frontier drains. Labels can only
/// decrease, so skipping clean regions loses nothing — the fixpoint is
/// the same one naive evaluation reaches, which the union-find parity
/// test asserts. Cancellation (deadline, memory ceiling, user) is
/// honored at every superstep boundary, and large half-steps run
/// through [`Engine::run_stage`] so they inherit retry and panic
/// isolation. Supersteps are recorded on the engine's `cc_supersteps`
/// counter.
pub fn components_bsp(engine: &Engine, graph: &EdgeList) -> Result<BspComponents> {
    let n_nodes = graph.num_nodes;
    let n_edges = graph.num_edges();
    let mut node_labels: Vec<u32> = (0..n_nodes as u32).collect();
    let mut edge_labels: Vec<u32> = vec![u32::MAX; n_edges];
    if n_edges == 0 || n_nodes == 0 {
        return Ok(BspComponents {
            edge_labels,
            node_labels,
            supersteps: 0,
        });
    }
    // node→edge incidence CSR, built once
    let mut inc_off = vec![0u32; n_nodes + 1];
    for &n in &graph.members {
        inc_off[n as usize + 1] += 1;
    }
    for i in 0..n_nodes {
        inc_off[i + 1] += inc_off[i];
    }
    let mut inc = vec![0u32; graph.members.len()];
    let mut cursor: Vec<u32> = inc_off[..n_nodes].to_vec();
    for e in 0..n_edges {
        for &n in graph.edge(e) {
            inc[cursor[n as usize] as usize] = e as u32;
            cursor[n as usize] += 1;
        }
    }
    let incident =
        |n: u32| -> &[u32] { &inc[inc_off[n as usize] as usize..inc_off[n as usize + 1] as usize] };

    let mut frontier: Vec<u32> = (0..n_nodes as u32).collect();
    let mut edge_seen = vec![false; n_edges];
    let mut node_seen = vec![false; n_nodes];
    let mut supersteps = 0u64;
    while !frontier.is_empty() {
        engine.check_cancelled()?;
        supersteps += 1;
        // scatter: edges incident to the frontier are the dirty set
        let mut dirty_edges: Vec<u32> = Vec::new();
        for &n in &frontier {
            for &e in incident(n) {
                if !edge_seen[e as usize] {
                    edge_seen[e as usize] = true;
                    dirty_edges.push(e);
                }
            }
        }
        // half-step 1: dirty edges adopt the min label of their members
        let new_edge = half_step(engine, &dirty_edges, |&e| {
            graph
                .edge(e as usize)
                .iter()
                .map(|&n| node_labels[n as usize])
                .min()
                .unwrap_or(u32::MAX)
        })?;
        let mut changed_edges: Vec<u32> = Vec::new();
        for (&e, &l) in dirty_edges.iter().zip(&new_edge) {
            edge_seen[e as usize] = false;
            if l < edge_labels[e as usize] {
                edge_labels[e as usize] = l;
                changed_edges.push(e);
            }
        }
        // half-step 2: nodes of changed edges adopt the min incident
        // edge label; those that decreased form the next frontier
        let mut candidates: Vec<u32> = Vec::new();
        for &e in &changed_edges {
            for &n in graph.edge(e as usize) {
                if !node_seen[n as usize] {
                    node_seen[n as usize] = true;
                    candidates.push(n);
                }
            }
        }
        let new_node = half_step(engine, &candidates, |&n| {
            incident(n)
                .iter()
                .map(|&e| edge_labels[e as usize])
                .min()
                .unwrap_or(u32::MAX)
                .min(node_labels[n as usize])
        })?;
        frontier.clear();
        for (&n, &l) in candidates.iter().zip(&new_node) {
            node_seen[n as usize] = false;
            if l < node_labels[n as usize] {
                node_labels[n as usize] = l;
                frontier.push(n);
            }
        }
    }
    Metrics::add(&engine.metrics().cc_supersteps, supersteps);
    Ok(BspComponents {
        edge_labels,
        node_labels,
        supersteps,
    })
}

/// One min-aggregation half of a superstep: pure reads of the shared
/// label arrays, so a retried task recomputes identical values. Small
/// dirty sets run inline; large ones run as one governed stage task per
/// chunk.
fn half_step<F>(engine: &Engine, items: &[u32], f: F) -> Result<Vec<u32>>
where
    F: Fn(&u32) -> u32 + Sync,
{
    if items.len() < PARALLEL_THRESHOLD {
        return Ok(items.iter().map(&f).collect());
    }
    let nparts = engine.default_partitions();
    let chunks = chunk_ranges(items.len(), nparts);
    let parts = engine.run_stage(&chunks, |_, &(lo, hi)| {
        Ok(items[lo..hi].iter().map(&f).collect::<Vec<u32>>())
    })?;
    Ok(parts.concat())
}

/// Split `0..n` into at most `parts` contiguous half-open ranges.
fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(parts.max(1)).max(1);
    (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect()
}

/// Component labels for loosely-typed `u64` edge lists: densify, run
/// the semi-naive BSP, and map labels back to the original node ids.
/// Keeps the oracle-parity comparison (and the ablation/bench callers)
/// on the original id space.
pub fn components_bsp_edges(engine: &Engine, edges: &[Vec<u64>]) -> Result<Vec<u64>> {
    let (el, node_ids) = EdgeList::from_edges(edges);
    let bsp = components_bsp(engine, &el)?;
    Ok(bsp
        .edge_labels
        .iter()
        .map(|&l| {
            if l == u32::MAX {
                u64::MAX
            } else {
                node_ids[l as usize]
            }
        })
        .collect())
}

/// Group edge indices by component label, ordered by label for
/// determinism.
pub fn group_by_component<L: Ord + Copy>(labels: &[L]) -> Vec<Vec<usize>> {
    let mut groups: std::collections::BTreeMap<L, Vec<usize>> = Default::default();
    for (i, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Compare partitions, not labels: union-find labels components by
    /// minimum original id, BSP by first-appearance order, so group
    /// *order* may differ even when the partition is identical.
    fn normalize<L: Ord + Copy>(labels: &[L]) -> Vec<Vec<usize>> {
        let mut groups = group_by_component(labels);
        groups.sort_by_key(|g| g[0]);
        groups
    }

    #[test]
    fn figure7_components() {
        // v1 = {1,2}, v2 = {2,3}, v3 = {4,5}: CC1 = {v1,v2}, CC2 = {v3}
        let edges = vec![vec![1, 2], vec![2, 3], vec![4, 5]];
        let uf = components_union_find(&edges);
        assert_eq!(uf[0], uf[1]);
        assert_ne!(uf[0], uf[2]);
        let e = Engine::parallel(2);
        let bsp = components_bsp_edges(&e, &edges).unwrap();
        assert_eq!(normalize(&uf), normalize(&bsp));
        assert_eq!(group_by_component(&uf), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn long_chain_converges() {
        // a path of 50 edges — stresses multi-superstep propagation
        let edges: Vec<Vec<u64>> = (0..50).map(|i| vec![i, i + 1]).collect();
        let e = Engine::parallel(4);
        let bsp = components_bsp_edges(&e, &edges).unwrap();
        assert!(bsp.iter().all(|&l| l == 0));
    }

    #[test]
    fn supersteps_are_counted_and_frontier_drains_early() {
        // a star: every edge shares node 0, so one superstep labels all
        // edges and a second drains the frontier
        let star: Vec<Vec<u64>> = (1..40).map(|i| vec![0, i]).collect();
        let (el, _) = EdgeList::from_edges(&star);
        let e = Engine::parallel(2);
        let star_steps = components_bsp(&e, &el).unwrap().supersteps;
        // a chain needs supersteps proportional to its diameter
        let chain: Vec<Vec<u64>> = (0..40).map(|i| vec![i, i + 1]).collect();
        let (el, _) = EdgeList::from_edges(&chain);
        let chain_steps = components_bsp(&e, &el).unwrap().supersteps;
        assert!(star_steps >= 1);
        assert!(
            chain_steps > star_steps,
            "chain ({chain_steps}) should need more supersteps than star ({star_steps})"
        );
        assert!(Metrics::get(&e.metrics().cc_supersteps) >= star_steps + chain_steps);
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<Vec<u64>> = vec![];
        assert!(components_union_find(&none).is_empty());
        let e = Engine::sequential();
        assert!(components_bsp_edges(&e, &none).unwrap().is_empty());
        let single = vec![vec![7]];
        assert_eq!(components_union_find(&single), vec![7]);
        assert_eq!(components_bsp_edges(&e, &single).unwrap(), vec![7]);
    }

    #[test]
    fn edge_list_dedups_members() {
        let mut el = EdgeList::with_nodes(0);
        el.push_edge([3, 1, 3, 2, 1]);
        el.push_edge([]);
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.edge(0), &[1, 2, 3]);
        assert_eq!(el.edge(1), &[] as &[u32]);
        assert_eq!(el.num_nodes, 4);
    }

    #[test]
    fn union_find_basic_properties() {
        let mut uf = UnionFind::new();
        assert_eq!(uf.find(5), 5);
        uf.union(5, 9);
        uf.union(9, 2);
        assert_eq!(uf.find(5), uf.find(2));
        assert_eq!(uf.find(5), 2, "smallest id becomes the root");
        uf.union(5, 2); // no-op union
        assert_eq!(uf.find(9), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn bsp_matches_union_find(edges in prop::collection::vec(
            prop::collection::vec(0u64..30, 1..4), 0..25)) {
            let uf = components_union_find(&edges);
            let e = Engine::parallel(3);
            let bsp = components_bsp_edges(&e, &edges).unwrap();
            prop_assert_eq!(normalize(&uf), normalize(&bsp));
        }
    }
}
