//! Evaluating and enforcing fix expressions under a partial assignment.
//!
//! Shared by the hypergraph repair algorithm and the master/slave
//! partitioned driver: both need to know whether a violation is already
//! resolved by the assignments made so far, and what value enforces a
//! given `x op y` fix.

use crate::{Assignment, Detected};
use bigdansing_common::{Cell, Value};
use bigdansing_rules::{Fix, FixRhs, Op};

/// The current value of `cell`: the assignment if present, else the
/// observed value recorded in the fix/violation.
pub fn current<'a>(assign: &'a Assignment, cell: Cell, observed: &'a Value) -> &'a Value {
    assign.get(&cell).unwrap_or(observed)
}

/// Does `fix` hold under the assignment?
pub fn fix_holds(fix: &Fix, assign: &Assignment) -> bool {
    let left = current(assign, fix.left, &fix.left_value);
    let right = match &fix.rhs {
        FixRhs::Cell(c, v) => current(assign, *c, v),
        FixRhs::Const(v) => v,
    };
    fix.op.holds(left, right)
}

/// Is the violation resolved, i.e. does at least one of its possible
/// fixes hold under the assignment, or was any of its cells already
/// changed from its observed value? (A changed cell means the violating
/// configuration no longer exists as detected; a later detection pass
/// re-checks, matching the iterate-until-clean loop of §2.2.)
pub fn violation_resolved(detected: &Detected, assign: &Assignment) -> bool {
    let (violation, fixes) = detected;
    if fixes.iter().any(|f| fix_holds(f, assign)) {
        return true;
    }
    violation
        .cells()
        .iter()
        .any(|(c, observed)| assign.get(c).is_some_and(|v| v != observed))
}

/// A value strictly above `v` (for enforcing `>` / `≠` fixes).
pub fn value_above(v: &Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i.saturating_add(1)),
        Value::Float(f) => Value::Float(f + f.abs().max(1.0) * 1e-9),
        Value::Str(s) => Value::str(format!("{s}~")),
        Value::Null => Value::Int(0),
    }
}

/// A value strictly below `v` (for enforcing `<` fixes). `Null` is the
/// minimum of the value order, so `value_below(Null)` returns `Null`
/// itself — a `< NULL` fix is unenforceable and stays violated.
pub fn value_below(v: &Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i.saturating_sub(1)),
        Value::Float(f) => Value::Float(f - f.abs().max(1.0) * 1e-9),
        Value::Str(s) if s.is_empty() => Value::Null,
        Value::Str(s) => Value::str(s.strip_suffix('~').unwrap_or("")),
        Value::Null => Value::Null,
    }
}

/// Rewrite a detected violation so its recorded cell values reflect the
/// current assignment — what a repair instance would observe if it
/// re-read the partially repaired data (used by the master/slave
/// iterations of §5.1).
pub fn overlay_detected(d: &Detected, assign: &Assignment) -> Detected {
    // the one place the repair path materializes a violation copy —
    // metered so the zero-copy gate can prove the grouping path never
    // takes it
    bigdansing_common::metrics::record_deep_clones(1);
    let (v, fixes) = d;
    let mut nv = bigdansing_rules::Violation::new(v.rule());
    for (c, val) in v.cells() {
        nv.add_cell(*c, current(assign, *c, val).clone());
    }
    let nfixes = fixes
        .iter()
        .map(|f| Fix {
            left: f.left,
            left_value: current(assign, f.left, &f.left_value).clone(),
            op: f.op,
            rhs: match &f.rhs {
                FixRhs::Cell(c, val) => FixRhs::Cell(*c, current(assign, *c, val).clone()),
                FixRhs::Const(k) => FixRhs::Const(k.clone()),
            },
        })
        .collect();
    (nv, nfixes)
}

/// The value to assign to `fix.left` so the fix holds, given the current
/// right-hand side. This is the minimal-change enforcement used in place
/// of the quadratic-programming relaxation of \[6\]: equality copies the
/// target, bounds move to (just past) the boundary.
pub fn enforcing_value(fix: &Fix, assign: &Assignment) -> Value {
    let rhs = match &fix.rhs {
        FixRhs::Cell(c, v) => current(assign, *c, v).clone(),
        FixRhs::Const(v) => v.clone(),
    };
    match fix.op {
        Op::Eq | Op::Le | Op::Ge => rhs,
        Op::Lt => value_below(&rhs),
        Op::Gt | Op::Ne => value_above(&rhs),
    }
}

/// The cost of enforcing `fix` (distance between the left cell's current
/// value and the enforcing value, §2.1's cost model).
pub fn enforcing_cost(fix: &Fix, assign: &Assignment) -> f64 {
    let new = enforcing_value(fix, assign);
    current(assign, fix.left, &fix.left_value).distance(&new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigdansing_rules::Violation;
    use std::collections::HashMap;

    fn cell(t: u64) -> Cell {
        Cell::new(t, 0)
    }

    #[test]
    fn fix_holds_uses_assignment_overlay() {
        let fix = Fix::assign_cell(cell(1), Value::str("SF"), cell(2), Value::str("LA"));
        let mut a: Assignment = HashMap::new();
        assert!(!fix_holds(&fix, &a));
        a.insert(cell(1), Value::str("LA"));
        assert!(fix_holds(&fix, &a));
        a.insert(cell(2), Value::str("CH"));
        assert!(!fix_holds(&fix, &a), "rhs cell reassignment re-breaks it");
    }

    #[test]
    fn enforcing_values_satisfy_their_ops() {
        let a: Assignment = HashMap::new();
        for op in [Op::Eq, Op::Ne, Op::Lt, Op::Gt, Op::Le, Op::Ge] {
            for rhs in [Value::Int(5), Value::Float(2.5), Value::str("x")] {
                let fix = Fix::compare(cell(1), Value::Int(100), op, FixRhs::Const(rhs.clone()));
                let v = enforcing_value(&fix, &a);
                assert!(op.holds(&v, &rhs), "{op:?} not satisfied: {v:?} vs {rhs:?}");
            }
        }
    }

    #[test]
    fn violation_resolution_via_fix_or_changed_cell() {
        let mut v = Violation::new("r");
        v.add_cell(cell(1), Value::str("SF"));
        v.add_cell(cell(2), Value::str("LA"));
        let fix = Fix::assign_cell(cell(1), Value::str("SF"), cell(2), Value::str("LA"));
        let det: Detected = (v, vec![fix]);
        let mut a: Assignment = HashMap::new();
        assert!(!violation_resolved(&det, &a));
        a.insert(cell(1), Value::str("LA"));
        assert!(violation_resolved(&det, &a));
        // resolution by changing a participating cell to something new
        let mut a2: Assignment = HashMap::new();
        a2.insert(cell(2), Value::str("NY"));
        assert!(violation_resolved(&det, &a2));
    }

    #[test]
    fn enforcing_cost_is_zero_when_already_equal() {
        let a: Assignment = HashMap::new();
        let fix = Fix::assign_const(cell(1), Value::Int(5), Value::Int(5));
        assert_eq!(enforcing_cost(&fix, &a), 0.0);
        let fix2 = Fix::assign_const(cell(1), Value::Int(5), Value::Int(50));
        assert!(enforcing_cost(&fix2, &a) > 0.0);
    }

    #[test]
    fn above_below_are_strict() {
        for v in [
            Value::Int(0),
            Value::Float(-3.5),
            Value::str("ab"),
            Value::Null,
        ] {
            assert!(value_above(&v) > v, "{v:?}");
        }
        for v in [
            Value::Int(0),
            Value::Float(-3.5),
            Value::str("ab"),
            Value::str(""),
        ] {
            assert!(value_below(&v) < v, "{v:?}");
        }
        // Null is the order minimum: below(Null) saturates
        assert_eq!(value_below(&Value::Null), Value::Null);
    }

    #[test]
    fn overlay_rewrites_observed_values() {
        let _serial = crate::testsync::lock();
        let mut v = Violation::new("r");
        v.add_cell(cell(1), Value::str("SF"));
        let fix = Fix::assign_cell(cell(1), Value::str("SF"), cell(2), Value::str("LA"));
        let mut a: Assignment = HashMap::new();
        a.insert(cell(1), Value::str("LA"));
        let (nv, nfixes) = overlay_detected(&(v, vec![fix]), &a);
        assert_eq!(nv.cells()[0].1, Value::str("LA"));
        assert_eq!(nfixes[0].left_value, Value::str("LA"));
    }
}
