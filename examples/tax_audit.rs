//! Inequality denial constraints at scale: the TaxB/φ2 workload.
//!
//! The DC `¬(t1.salary > t2.salary ∧ t1.rate < t2.rate)` cannot be
//! blocked on equality, so the planner routes candidate generation to
//! OCJoin (§4.3): range partition on salary, sort, prune partition pairs
//! by min/max, and merge-join the survivors. This example shows the
//! plan choice, the pruning metrics, and a hypergraph-algorithm repair.
//!
//! Run with: `cargo run --release --example tax_audit`

use bigdansing::{BigDansing, CleanseOptions, HypergraphRepair, IterateStrategy, RepairStrategy};
use bigdansing_datagen::tax;
use bigdansing_plan::physical::choose_strategy;
use bigdansing_rules::DcRule;
use std::sync::Arc;

fn main() {
    // TaxB: clean tax records with a monotone salary→rate schedule,
    // then 10% numeric noise on the rate column
    let gt = tax::taxb(4_000, 0.10, 42);
    println!(
        "TaxB: {} rows, {} rate cells perturbed",
        gt.dirty.len(),
        gt.error_count()
    );

    let dc = DcRule::parse(
        "t1.salary > t2.salary & t1.rate < t2.rate",
        gt.dirty.schema(),
    )
    .unwrap();

    // the planner's enhancer selection (§4.2)
    match choose_strategy(&dc) {
        IterateStrategy::OcJoin(conds) => {
            println!("planner: OCJoin with {} ordering conditions", conds.len())
        }
        other => println!("planner: {other:?}"),
    }

    let mut sys = BigDansing::parallel(4);
    sys.add_rule(Arc::new(dc));

    let report = sys.detect(&gt.dirty).unwrap();
    let m = sys.engine().metrics().snapshot();
    println!(
        "detected {} violating pairs; OCJoin pruned {} of {} partition pairs",
        report.violation_count(),
        m.partitions_pruned,
        m.partitions_pruned + m.partitions_joined,
    );

    // repair with the hypergraph algorithm: inequality fixes move the
    // offending cell to the violated bound
    let options = CleanseOptions {
        strategy: RepairStrategy::ParallelBlackBox(Arc::new(HypergraphRepair::default())),
        max_iterations: 3,
        ..Default::default()
    };
    let result = sys.cleanse(&gt.dirty, options).expect("cleanse runs");
    let before = gt.mean_numeric_distance(&gt.dirty, tax::attr::RATE);
    let after = gt.mean_numeric_distance(&result.table, tax::attr::RATE);
    println!(
        "repair: {} iterations, {} cells changed; mean |rate − truth| {:.2} → {:.2}",
        result.iterations, result.cells_changed, before, after
    );
    let remaining = sys.detect(&result.table).unwrap().violation_count();
    println!("remaining violations: {remaining} (0 = converged; >0 = unfixable residue per §2.2)");
}
