//! Deduplication with a procedural UDF rule (the paper's φU and the
//! §6.5 experiment): find near-duplicate customers with a Levenshtein
//! similarity function, blocked on a name prefix so the quadratic
//! comparison only runs inside blocks.
//!
//! Run with: `cargo run --release --example dedup`

use bigdansing::{BigDansing, DedupRule, Rule};
use bigdansing_common::metrics::Metrics;
use bigdansing_datagen::customer;
use std::sync::Arc;

fn main() {
    // customer1: TPC-H-style customers replicated 3× plus 2% fuzzy
    // duplicates with one-character edits on name and phone
    let (table, true_pairs) = customer::customer1(2_000, 7);
    println!(
        "customer1: {} rows, {} injected fuzzy duplicates",
        table.len(),
        true_pairs.len()
    );

    let rule: Arc<dyn Rule> = Arc::new(
        DedupRule::new("udf:dedup", customer::attr::NAME, 0.85)
            .with_block_prefix(2)
            .with_merge_attrs(vec![customer::attr::NAME, customer::attr::PHONE]),
    );

    let sys = {
        let mut s = BigDansing::parallel(4);
        s.add_rule(Arc::clone(&rule));
        s
    };

    let report = sys.detect(&table).unwrap();
    let metrics = sys.engine().metrics().snapshot();
    println!(
        "blocked detection: {} duplicate pairs found, {} candidate pairs compared",
        report.violation_count(),
        metrics.pairs_generated
    );

    // how many of the *fuzzy* injected duplicates did blocking keep?
    let found: std::collections::HashSet<(u64, u64)> = report
        .detected
        .iter()
        .map(|(v, _)| {
            let ids = v.tuple_ids();
            (ids[0], ids[1])
        })
        .collect();
    let recalled = true_pairs
        .iter()
        .filter(|(a, b)| found.contains(&(*a.min(b), *a.max(b))))
        .count();
    println!(
        "fuzzy-duplicate recall: {recalled}/{} (missed ones had their blocking prefix edited)",
        true_pairs.len()
    );

    // contrast with the Detect-only plan (no Scope, no Block): the same
    // duplicates, but a full UCrossProduct of candidates — the Figure
    // 12(a) ablation
    sys.engine().metrics().reset();
    let only = sys.executor().detect_only(&table, rule).unwrap();
    let all_pairs = Metrics::get(&sys.engine().metrics().pairs_generated);
    println!(
        "detect-only: {} pairs found, {} candidates compared ({}x more work)",
        only.violation_count(),
        all_pairs,
        all_pairs / metrics.pairs_generated.max(1)
    );
}
