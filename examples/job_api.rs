//! The labeled job API and the planner, end to end (Appendix A + §3.2 +
//! §4.2): build a job by hand, validate it into a logical plan, watch
//! Algorithm 1 consolidate redundant operators, and inspect the physical
//! plan's enhancer choices.
//!
//! Run with: `cargo run --release --example job_api`

use bigdansing::{Engine, Job};
use bigdansing_common::Schema;
use bigdansing_plan::{physical, Executor};
use bigdansing_rules::{DcRule, FdRule, Rule};
use std::sync::Arc;

fn main() {
    let schema = Schema::parse("name,zipcode,city,state,salary,rate");
    let fd: Arc<dyn Rule> = Arc::new(FdRule::parse("zipcode -> city", &schema).unwrap());
    let dc: Arc<dyn Rule> =
        Arc::new(DcRule::parse("t1.salary > t2.salary & t1.rate < t2.rate", &schema).unwrap());

    // -- a hand-written job, mirroring Listing 3 of the paper ----------
    let mut job = Job::new("Example Job");
    job.add_input("D1", &["S", "T"]); // two labeled flows of one dataset
    job.add_scope(&fd, "S");
    job.add_scope(&fd, "T"); // redundant on purpose: same rule, same source
    job.add_block(&fd, "S");
    job.add_iterate(&fd, &["S"], "M");
    job.add_detect(&fd, "M");
    job.add_genfix(&fd, "M");
    let logical = job.build().expect("valid job");
    println!("logical plan:\n{logical:?}");

    // -- Algorithm 1: the twin Scope collapses into a shared scan ------
    let physical_plan = physical::translate(logical).expect("translatable");
    println!(
        "consolidation merged {} operator pair(s)",
        physical_plan.consolidated_ops
    );
    for p in &physical_plan.pipelines {
        println!("pipeline: {p:?}");
    }

    // -- enhancer selection per rule class ------------------------------
    println!("\nenhancer choices (§4.2):");
    for (name, rule) in [("FD φF", &fd), ("DC φD", &dc)] {
        println!("  {name}: {:?}", physical::choose_strategy(rule.as_ref()));
    }

    // -- and the auto-generated job for declarative rules ---------------
    let mut auto = Job::new("auto");
    auto.add_rule(Arc::clone(&dc), "D1");
    let plan = auto.build().expect("valid");
    println!("\nauto-generated job for the DC:\n{plan:?}");

    // pipelines execute on any engine; here the sequential oracle
    let table = bigdansing_common::csv::parse_str(
        "D1",
        "name,zipcode,city,state,salary,rate\nA,1,NY,NY,10,5\nB,1,LA,CA,20,1\n",
        true,
        None,
    )
    .unwrap();
    let exec = Executor::new(Engine::sequential());
    for pipeline in &physical::translate(plan).unwrap().pipelines {
        let out = exec.run_pipeline(exec.load(&table), pipeline).unwrap();
        println!(
            "executed {} → {} violation(s)",
            pipeline.rule.name(),
            out.violation_count()
        );
    }
}
