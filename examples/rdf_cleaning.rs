//! RDF data cleansing (Appendix C of the paper).
//!
//! BigDansing is "not restricted to a specific data model": triples are
//! just another kind of data unit. This example reproduces the
//! appendix's scenario — no two graduate students in different
//! universities may share the same advisor — as a UDF rule over a
//! derived (student, university, advisor) view of the triple store.
//!
//! Run with: `cargo run --release --example rdf_cleaning`

use bigdansing::{BigDansing, BlockKey, Fix, Rule, UdfRule, Violation};
use bigdansing_common::rdf;
use bigdansing_common::{Table, Tuple, TupleId, Value};
use std::sync::Arc;

const RDF_INPUT: &str = "\
# subject predicate object
John  student_in  MIT
Sally student_in  Yale
John  advised_by  William
Sally advised_by  William
Bob   student_in  MIT
Bob   advised_by  Garcia
";

/// Join `student_in` and `advised_by` triples into
/// `(student, university, advisor)` tuples — the Scope/Block/Iterate
/// chain of Figure 13, folded into a preparation step for clarity.
fn student_view(triples: &Table) -> Table {
    use std::collections::HashMap;
    let mut uni: HashMap<String, String> = HashMap::new();
    let mut adv: HashMap<String, String> = HashMap::new();
    for t in triples.tuples() {
        let s = t.value(rdf::SUBJECT).to_string();
        let o = t.value(rdf::OBJECT).to_string();
        match t.value(rdf::PREDICATE).as_str() {
            Some("student_in") => {
                uni.insert(s, o);
            }
            Some("advised_by") => {
                adv.insert(s, o);
            }
            _ => {}
        }
    }
    let mut students: Vec<&String> = uni.keys().collect();
    students.sort();
    let tuples = students
        .iter()
        .enumerate()
        .filter_map(|(i, s)| {
            adv.get(*s).map(|a| {
                Tuple::new(
                    i as TupleId,
                    vec![
                        Value::str(s.as_str()),
                        Value::str(uni[*s].as_str()),
                        Value::str(a.as_str()),
                    ],
                )
            })
        })
        .collect();
    Table::new(
        "students",
        bigdansing_common::Schema::parse("student,university,advisor"),
        tuples,
    )
}

fn main() {
    let triples = rdf::parse_str("advisors", RDF_INPUT).expect("valid triples");
    println!("{} triples loaded", triples.len());
    let view = student_view(&triples);

    // UDF rule: same advisor ⇒ same university (Appendix C's constraint)
    let rule: Arc<dyn Rule> = Arc::new(
        UdfRule::builder("udf:same-advisor-same-university", |input| {
            let (a, b) = input.as_pair();
            if a.value(2) == b.value(2) && a.value(1) != b.value(1) {
                vec![Violation::new("udf:same-advisor-same-university")
                    .with_cell(a.cell(1), a.value(1).clone())
                    .with_cell(b.cell(1), b.value(1).clone())]
            } else {
                vec![]
            }
        })
        .block(|t| Some(BlockKey::single(t.value(2).clone()))) // block on advisor
        .gen_fix(|v| {
            let (c1, v1) = &v.cells()[0];
            let (c2, v2) = &v.cells()[1];
            vec![Fix::assign_cell(*c1, v1.clone(), *c2, v2.clone())]
        })
        .build(),
    );

    let mut sys = BigDansing::parallel(2);
    sys.add_rule(rule);
    let report = sys.detect(&view).unwrap();
    println!("violations: {}", report.violation_count());
    for (v, fixes) in &report.detected {
        println!("  {v:?}");
        for f in fixes {
            println!("    possible fix: {f:?}");
        }
    }
    // John (MIT) and Sally (Yale) share William → exactly one violation
    assert_eq!(report.violation_count(), 1);

    let result = sys
        .cleanse(&view, bigdansing::CleanseOptions::default())
        .expect("cleanse runs");
    println!("\nrepaired student view:");
    print!("{}", bigdansing_common::csv::to_string(&result.table));
    assert!(sys.detect(&result.table).unwrap().is_clean());
}
