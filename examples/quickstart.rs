//! Quickstart: Example 1 of the paper, end to end.
//!
//! Builds Table 1 (the tax records of §1), registers the paper's rules
//! φF (`zipcode → city`, an FD) and φD (the salary/rate denial
//! constraint), detects the violations the paper walks through, and runs
//! the full detect ⇄ repair loop.
//!
//! Run with: `cargo run --release --example quickstart`

use bigdansing::{BigDansing, CleanseOptions, HypergraphRepair, RepairStrategy};
use bigdansing_common::{csv, Table};
use std::sync::Arc;

fn table1() -> Table {
    // Table 1 of the paper (with concrete salaries/rates).
    csv::parse_str(
        "tax",
        "name,zipcode,city,state,salary,rate\n\
         Annie,10001,NY,NY,24000,15\n\
         Laure,90210,LA,CA,25000,10\n\
         John,60601,CH,IL,40000,25\n\
         Mark,90210,SF,CA,88000,30\n\
         Robert,68270,CH,IL,15000,12\n\
         Mary,90210,LA,CA,81000,28\n",
        true,
        None,
    )
    .expect("well-formed CSV")
}

fn main() {
    let table = table1();
    println!("input ({} tuples):", table.len());
    print!("{}", csv::to_string(&table));

    // -- declarative rules, parsed exactly like the paper writes them --
    let mut sys = BigDansing::parallel(4);
    sys.add_fd("zipcode -> city", table.schema()).unwrap();
    sys.add_dc("t1.salary > t2.salary & t1.rate < t2.rate", table.schema())
        .unwrap();

    // -- detection: the paper's violations fall out -------------------
    let report = sys.detect(&table).unwrap();
    println!("\ndetected {} violations:", report.violation_count());
    for (v, fixes) in &report.detected {
        println!("  {v:?}");
        for f in fixes {
            println!("    possible fix: {f:?}");
        }
    }

    // -- full cleansing ------------------------------------------------
    // the DC needs the hypergraph algorithm; the FD is handled by the
    // same black-box driver
    let options = CleanseOptions {
        strategy: RepairStrategy::ParallelBlackBox(Arc::new(HypergraphRepair::default())),
        ..Default::default()
    };
    let result = sys.cleanse(&table, options).expect("cleanse runs");
    println!(
        "\ncleansed in {} iteration(s), {} cell(s) changed, repair cost {:.3}:",
        result.iterations, result.cells_changed, result.repair_cost
    );
    print!("{}", csv::to_string(&result.table));
    assert!(
        sys.detect(&result.table).unwrap().is_clean(),
        "table must end clean"
    );
    println!("\nno violations remain ✓");
}
