//! Umbrella crate for the BigDansing reproduction workspace.
//!
//! This crate exists so that the repository root can host the cross-crate
//! integration tests (`/tests`) and the runnable examples (`/examples`).
//! It re-exports every workspace crate under one roof for convenience.

pub use bigdansing;
pub use bigdansing_baselines as baselines;
pub use bigdansing_common as common;
pub use bigdansing_dataflow as dataflow;
pub use bigdansing_datagen as datagen;
pub use bigdansing_ocjoin as ocjoin;
pub use bigdansing_plan as plan;
pub use bigdansing_repair as repair;
pub use bigdansing_rules as rules;
pub use bigdansing_storage as storage;
