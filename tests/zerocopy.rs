//! Zero-copy detect path: equivalence against a deep-clone oracle and
//! an allocation-regression gate.
//!
//! The detect hot path moves tuple *handles* (shared row storage +
//! projection views) and dictionary-encoded blocking keys; nothing in
//! the pipeline may depend on tuples being deeply materialized. These
//! tests pit the production path against an oracle whose input tuples
//! are forcibly deep-materialized first — the outputs must be
//! byte-identical (violations **and** fixes) — and then gate the fused
//! FD pipeline on performing **zero** deep clones.
//!
//! Deep-clone accounting is process-global, so every test here takes a
//! shared lock to keep concurrently running tests from attributing each
//! other's clones.

use bigdansing_common::metrics::Metrics;
use bigdansing_common::{Schema, Table, Tuple, Value};
use bigdansing_dataflow::{Engine, ExecMode, FaultInjector, FaultPolicy, MemoryBudget};
use bigdansing_datagen::tax;
use bigdansing_plan::{DetectOutput, Executor};
use bigdansing_rules::{CfdRule, DcRule, DedupRule, FdRule, Rule};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the tests in this binary: the deep-clone counter is a
/// process-wide atomic, and the `tuples_cloned == 0` gate must not see
/// another test's attribution window.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Byte-level signature of a detect run: violations with their fixes,
/// rendered through `Debug` so any drift in ids, cells, values, or fix
/// payloads shows up.
fn signature(out: &DetectOutput) -> BTreeSet<String> {
    out.detected
        .iter()
        .map(|(v, fixes)| format!("{v:?}|{fixes:?}"))
        .collect()
}

/// The deep-clone oracle input: every tuple forcibly materialized into
/// fresh owned storage, so the oracle run cannot share a byte with the
/// zero-copy run's views.
fn deep_materialized(table: &Table) -> Table {
    let tuples = table
        .tuples()
        .iter()
        .map(|t| Tuple::new(t.id(), t.to_values()))
        .collect();
    Table::new(table.name(), table.schema().clone(), tuples)
}

/// One instance of every physical pipeline shape: FD → blocked pairs,
/// constant CFD → single units, inequality DC → OCJoin (streaming
/// sink), unblocked dedup → UCrossProduct.
fn shape_suite() -> Vec<(&'static str, Table, Arc<dyn Rule>)> {
    let fd = tax::taxa(300, 0.10, 31);
    let fd_rule: Arc<dyn Rule> =
        Arc::new(FdRule::parse("zipcode -> city", fd.dirty.schema()).unwrap());
    let cfd_rows = (0..240)
        .map(|i| match i % 3 {
            0 => vec![Value::Int(90210), Value::str("LA")],
            1 => vec![Value::Int(90210), Value::str("SF")],
            _ => vec![Value::Int(10001), Value::str("NY")],
        })
        .collect();
    let cfd_table = Table::from_rows("cfd", Schema::parse("zipcode,city"), cfd_rows);
    let cfd_rule: Arc<dyn Rule> = Arc::new(
        CfdRule::parse(
            "zipcode -> city | zipcode=90210, city=LA",
            cfd_table.schema(),
        )
        .unwrap(),
    );
    let dc = tax::taxb(120, 0.10, 32);
    let dc_rule: Arc<dyn Rule> = Arc::new(
        DcRule::parse(
            "t1.salary > t2.salary & t1.rate < t2.rate",
            dc.dirty.schema(),
        )
        .unwrap(),
    );
    let dd = tax::taxa(80, 0.10, 33);
    let dd_rule: Arc<dyn Rule> =
        Arc::new(DedupRule::new("udf:dedup", tax::attr::CITY, 0.5).with_block_prefix(0));
    vec![
        ("fd/block-pairs", fd.dirty, fd_rule),
        ("cfd/single-units", cfd_table, cfd_rule),
        ("dc/ocjoin", dc.dirty, dc_rule),
        ("dedup/ucross", dd.dirty, dd_rule),
    ]
}

#[test]
fn zero_copy_path_matches_deep_clone_oracle_under_injected_faults() {
    let _g = lock();
    let mut panics = 0;
    for (shape, table, rule) in shape_suite() {
        let oracle = {
            let exec = Executor::new(Engine::sequential());
            let out = exec
                .detect(&deep_materialized(&table), &[Arc::clone(&rule)])
                .unwrap();
            signature(&out)
        };
        assert!(!oracle.is_empty(), "{shape}: oracle found nothing");
        let engine = Engine::builder(ExecMode::Parallel)
            .workers(3)
            .fault_policy(FaultPolicy::with_max_attempts(6))
            .fault_injector(
                FaultInjector::seeded(0x2E50)
                    .with_task_panics(0.15)
                    .with_spill_errors(0.15),
            )
            .build();
        let exec = Executor::new(engine);
        let got = signature(&exec.detect(&table, &[Arc::clone(&rule)]).unwrap());
        assert_eq!(
            oracle, got,
            "{shape}: zero-copy run diverged from the deep-clone oracle under faults"
        );
        panics += Metrics::get(&exec.engine().metrics().panics_caught);
    }
    assert!(panics > 0, "no panics injected — injector not wired in");
}

#[test]
fn zero_copy_path_matches_deep_clone_oracle_under_memory_budget() {
    let _g = lock();
    let mut spills = 0;
    for (shape, table, rule) in shape_suite() {
        let oracle = {
            let exec = Executor::new(Engine::sequential());
            let out = exec
                .detect(&deep_materialized(&table), &[Arc::clone(&rule)])
                .unwrap();
            signature(&out)
        };
        let engine = Engine::builder(ExecMode::Parallel)
            .workers(2)
            .memory_budget(MemoryBudget::new(4 * 1024, 64 * 1024 * 1024))
            .build();
        let exec = Executor::new(engine);
        let got = signature(&exec.detect(&table, &[Arc::clone(&rule)]).unwrap());
        assert_eq!(
            oracle, got,
            "{shape}: zero-copy run diverged from the deep-clone oracle under a memory budget"
        );
        spills += Metrics::get(&exec.engine().metrics().pressure_spills);
    }
    assert!(spills > 0, "budget below working set but nothing spilled");
}

#[test]
fn fused_fd_pipeline_performs_zero_deep_clones() {
    // Allocation-regression gate: Scope (projection views), Block
    // (dictionary-encoded keys), and the fused Iterate→Detect→GenFix
    // pass must move only handles. One deep copy anywhere on the FD hot
    // path — a `to_values()` materialization, a `BlockKey` clone — and
    // this counter goes nonzero.
    let _g = lock();
    let gt = tax::taxa(400, 0.10, 34);
    let rule: Arc<dyn Rule> =
        Arc::new(FdRule::parse("zipcode -> city", gt.dirty.schema()).unwrap());
    let exec = Executor::new(Engine::parallel(4));
    let out = exec.detect(&gt.dirty, &[rule]).unwrap();
    assert!(!out.is_clean(), "expected violations on the dirty table");
    assert_eq!(
        Metrics::get(&exec.engine().metrics().tuples_cloned),
        0,
        "fused FD pipeline deep-cloned tuple or key payloads"
    );
}

#[test]
fn streaming_ocjoin_detect_reports_shuffle_bytes_and_pairs() {
    // The rewired DC path must still account its shuffle volume and
    // pair count even though pairs are never materialized.
    let _g = lock();
    let gt = tax::taxb(150, 0.10, 35);
    let rule: Arc<dyn Rule> = Arc::new(
        DcRule::parse(
            "t1.salary > t2.salary & t1.rate < t2.rate",
            gt.dirty.schema(),
        )
        .unwrap(),
    );
    let exec = Executor::new(Engine::parallel(3));
    let out = exec.detect(&gt.dirty, &[rule]).unwrap();
    assert!(!out.is_clean());
    let m = exec.engine().metrics();
    assert!(Metrics::get(&m.pairs_generated) > 0, "pairs not counted");
    assert!(
        Metrics::get(&m.bytes_shuffled) > 0,
        "range partitioning did not account shuffled bytes"
    );
    assert_eq!(
        Metrics::get(&m.detect_calls),
        Metrics::get(&m.pairs_generated),
        "each enumerated pair must be detected exactly once"
    );
}
