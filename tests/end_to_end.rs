//! End-to-end cleansing across crates: generators → rules → planner →
//! engine → repair, for every rule class the paper evaluates.

use bigdansing::{BigDansing, CleanseOptions, HypergraphRepair, RepairStrategy};
use bigdansing_datagen::{hai, tax, tpch};
use bigdansing_rules::{DedupRule, FdRule, Rule};
use std::sync::Arc;

#[test]
fn taxa_phi1_cleanses_clean() {
    let gt = tax::taxa(2_000, 0.10, 1);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
    let before = sys.detect(&gt.dirty).unwrap();
    assert!(
        before.violation_count() > 0,
        "errors must trigger violations"
    );
    let res = sys.cleanse(&gt.dirty, CleanseOptions::default()).unwrap();
    assert!(res.converged);
    assert!(sys.detect(&res.table).unwrap().is_clean());
    assert!(res.cells_changed > 0);
}

#[test]
fn tpch_phi3_cleanses_clean() {
    let gt = tpch::tpch(2_000, 0.10, 2);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("o_custkey -> c_address", gt.dirty.schema())
        .unwrap();
    let res = sys.cleanse(&gt.dirty, CleanseOptions::default()).unwrap();
    assert!(res.converged);
    assert!(sys.detect(&res.table).unwrap().is_clean());
}

#[test]
fn hai_multi_rule_combo_cleanses() {
    let combo = hai::RuleCombo::Phi6And7;
    let gt = hai::hai(1_500, combo, 0.10, 3);
    let mut sys = BigDansing::parallel(2);
    for spec in combo.fd_specs() {
        sys.add_fd(spec, gt.dirty.schema()).unwrap();
    }
    let res = sys.cleanse(&gt.dirty, CleanseOptions::default()).unwrap();
    // multiple interacting FDs may need several iterations (Table 4)
    assert!(res.iterations >= 1);
    let remaining = sys.detect(&res.table).unwrap().violation_count();
    assert!(
        remaining * 10 <= sys.detect(&gt.dirty).unwrap().violation_count().max(1),
        "at least 90% of violations resolved, {remaining} remain"
    );
}

#[test]
fn taxb_phi2_converges_with_hypergraph_repair() {
    let gt = tax::taxb(800, 0.10, 4);
    let mut sys = BigDansing::parallel(2);
    sys.add_dc(
        "t1.salary > t2.salary & t1.rate < t2.rate",
        gt.dirty.schema(),
    )
    .unwrap();
    let before = sys.detect(&gt.dirty).unwrap().violation_count();
    assert!(before > 0);
    let res = sys
        .cleanse(
            &gt.dirty,
            CleanseOptions {
                strategy: RepairStrategy::ParallelBlackBox(Arc::new(HypergraphRepair::default())),
                max_iterations: 4,
                ..Default::default()
            },
        )
        .unwrap();
    let after = sys.detect(&res.table).unwrap().violation_count();
    assert!(
        after * 100 <= before,
        "DC violations should drop ≥100×: {before} → {after}"
    );
}

#[test]
fn dedup_merges_injected_duplicates() {
    let (table, pairs) = bigdansing_datagen::ncvoter::ncvoter(1_500, 5);
    let rule: Arc<dyn Rule> = Arc::new(
        DedupRule::new("udf:dedup", bigdansing_datagen::ncvoter::attr::NAME, 0.85)
            .with_merge_attrs(vec![
                bigdansing_datagen::ncvoter::attr::NAME,
                bigdansing_datagen::ncvoter::attr::PHONE,
            ]),
    );
    let mut sys = BigDansing::parallel(2);
    sys.add_rule(rule);
    let out = sys.detect(&table).unwrap();
    // most injected fuzzy pairs are found (blocking can miss prefix edits)
    let found: std::collections::HashSet<Vec<u64>> =
        out.detected.iter().map(|(v, _)| v.tuple_ids()).collect();
    let recalled = pairs
        .iter()
        .filter(|(a, b)| found.contains(&vec![*a.min(b), *a.max(b)]))
        .count();
    assert!(
        recalled * 10 >= pairs.len() * 7,
        "recall ≥ 70%: {recalled}/{}",
        pairs.len()
    );
}

#[test]
fn cfd_cleanses_to_the_pattern_constant() {
    let schema = bigdansing_common::Schema::parse("zipcode,city");
    let table = bigdansing_common::Table::from_rows(
        "t",
        schema.clone(),
        vec![
            vec![90210.into(), "LA".into()],
            vec![90210.into(), "XX".into()],
            vec![10001.into(), "NY".into()],
        ],
    );
    let mut sys = BigDansing::sequential();
    sys.add_cfd("zipcode -> city | zipcode=90210, city=LA", &schema)
        .unwrap();
    let res = sys.cleanse(&table, CleanseOptions::default()).unwrap();
    assert!(res.converged);
    assert_eq!(
        res.table.tuple(1).unwrap().value(1),
        &bigdansing_common::Value::str("LA")
    );
}

#[test]
fn multiple_rule_classes_in_one_system() {
    let gt = tax::taxa(800, 0.05, 6);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
    sys.add_fd("zipcode -> state", gt.dirty.schema()).unwrap();
    sys.add_rule(Arc::new(
        FdRule::parse("zipcode -> city, state", gt.dirty.schema()).unwrap(),
    ));
    let out = sys.detect(&gt.dirty).unwrap();
    assert!(out.violation_count() > 0);
    // rule names distinguish the sources
    let names: std::collections::HashSet<&str> =
        out.detected.iter().map(|(v, _)| v.rule()).collect();
    assert!(names.len() >= 2);
}
