//! Oracle-equivalence tests for the incremental cleansing subsystem:
//! after every applied batch, a [`Session`]'s table and violation store
//! must be indistinguishable from a full recompute (materialize the
//! delta with [`apply_batch_to_table`], then run the batch cleanse loop
//! and a fresh detect over its output).
//!
//! The suite covers every Iterate strategy the planner can choose: FD
//! (BlockPairs), CFD (BlockPairs with conditioned detect), DC with
//! inequalities (OCJoin), and a dedup UDF both blocked (BlockPairs) and
//! unblocked (UCrossProduct).

use bigdansing::{
    apply_batch_to_table, BigDansing, CleanseOptions, DedupRule, DeltaBatch, Session,
};
use bigdansing_common::{Schema, Table, Value};
use std::sync::Arc;

fn tax_table() -> Table {
    // zipcode,city,salary,rate — seeded with an FD violation (rows 0/1)
    // and a DC-style inequality violation (rows 2/3: higher salary,
    // lower rate).
    Table::from_rows(
        "tax",
        Schema::parse("zipcode,city,salary,rate"),
        vec![
            vec![
                Value::Int(90210),
                Value::str("LA"),
                Value::Int(3000),
                Value::Int(10),
            ],
            vec![
                Value::Int(90210),
                Value::str("SF"),
                Value::Int(4000),
                Value::Int(15),
            ],
            vec![
                Value::Int(10001),
                Value::str("NY"),
                Value::Int(5000),
                Value::Int(20),
            ],
            vec![
                Value::Int(10001),
                Value::str("NY"),
                Value::Int(6000),
                Value::Int(18),
            ],
            vec![
                Value::Int(60601),
                Value::str("CH"),
                Value::Int(2000),
                Value::Int(8),
            ],
        ],
    )
}

fn row(zip: i64, city: &str, salary: i64, rate: i64) -> Vec<Value> {
    vec![
        Value::Int(zip),
        Value::str(city),
        Value::Int(salary),
        Value::Int(rate),
    ]
}

/// Canonical multiset rendering of `(violation, fixes)` pairs, so store
/// snapshots (insertion order) compare against detect output (plan
/// order).
fn canon(detected: &[(bigdansing::Violation, Vec<bigdansing::Fix>)]) -> Vec<String> {
    let mut out: Vec<String> = detected
        .iter()
        .map(|(v, fixes)| format!("{v:?} | {fixes:?}"))
        .collect();
    out.sort();
    out
}

fn rows_of(table: &Table) -> Vec<String> {
    table.tuples().iter().map(|t| format!("{t:?}")).collect()
}

/// Drive `batches` through a session and, in lockstep, through the
/// from-scratch oracle; assert byte-identical tables and violation
/// stores after every batch.
fn assert_oracle_parity(sys: &BigDansing, base: &Table, batches: Vec<DeltaBatch>) {
    let options = CleanseOptions::default();
    let mut session: Session = sys.open_session(base, options.clone()).unwrap();

    // The store right after open must equal a full detect on the base.
    let full = sys.detect(base).unwrap();
    assert_eq!(
        canon(&session.detected()),
        canon(&full.detected),
        "initial store differs from full detect"
    );

    let mut current = base.clone();
    for (i, batch) in batches.into_iter().enumerate() {
        current = apply_batch_to_table(&current, &batch).unwrap();
        let report = sys.apply_delta(&mut session, batch).unwrap();
        let oracle = sys.cleanse(&current, options.clone()).unwrap();

        assert_eq!(
            rows_of(session.table()),
            rows_of(&oracle.table),
            "batch {i}: repaired table differs from full recompute"
        );
        let residue = sys.detect(&oracle.table).unwrap();
        assert_eq!(
            canon(&session.detected()),
            canon(&residue.detected),
            "batch {i}: violation store differs from full recompute"
        );
        assert_eq!(
            report.converged, oracle.converged,
            "batch {i}: convergence verdict differs"
        );
        assert_eq!(
            report.violations_remaining,
            residue.violation_count(),
            "batch {i}: remaining-violation count differs"
        );
        current = oracle.table;
    }
}

fn mixed_batches() -> Vec<DeltaBatch> {
    vec![
        // inserts: one joins an existing block and conflicts, one is new
        DeltaBatch::new()
            .insert(10, row(90210, "LB", 3500, 12))
            .insert(11, row(77001, "HO", 1000, 5)),
        // update re-blocks a tuple; delete retracts its violations
        DeltaBatch::new()
            .update(2, row(60601, "CH", 5000, 20))
            .delete(3),
        // delete + reinsert same id (moves to end), plus a clean no-op-ish update
        DeltaBatch::new()
            .delete(0)
            .insert(0, row(10001, "NY", 900, 4))
            .update(4, row(60601, "CH", 2000, 8)),
        // empty batch: nothing dirty, repair skippable
        DeltaBatch::new(),
        // delete + reinsert same id staying in the SAME block with a new
        // city (regression: the dead version must leave the block index
        // even though the id's seq changed mid-batch) ...
        DeltaBatch::new()
            .delete(4)
            .insert(4, row(60601, "XY", 2100, 9)),
        // ... a later delta into that block pairs only with live rows ...
        DeltaBatch::new().insert(12, row(60601, "XY", 50, 2)),
        // ... and deleting the reborn row then inserting again must not
        // resurrect its dead version as a phantom partner
        DeltaBatch::new().delete(4),
        DeltaBatch::new().insert(13, row(60601, "QQ", 75, 3)),
    ]
}

#[test]
fn fd_session_matches_full_recompute() {
    let base = tax_table();
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", base.schema()).unwrap();
    assert_oracle_parity(&sys, &base, mixed_batches());
}

#[test]
fn cfd_session_matches_full_recompute() {
    let base = tax_table();
    let mut sys = BigDansing::parallel(2);
    sys.add_cfd("zipcode -> city | zipcode=10001, city=NY", base.schema())
        .unwrap();
    assert_oracle_parity(&sys, &base, mixed_batches());
}

#[test]
fn dc_inequality_session_matches_full_recompute() {
    let base = tax_table();
    let mut sys = BigDansing::parallel(2);
    // φ2 from the paper: no one earns more yet pays a lower rate.
    sys.add_dc("t1.salary > t2.salary & t1.rate < t2.rate", base.schema())
        .unwrap();
    assert_oracle_parity(&sys, &base, mixed_batches());
}

#[test]
fn dedup_udf_session_matches_full_recompute() {
    let base = Table::from_rows(
        "addr",
        Schema::parse("name,city"),
        vec![
            vec![Value::str("Jones"), Value::str("LA")],
            vec![Value::str("Jonse"), Value::str("LA")],
            vec![Value::str("Smith"), Value::str("NY")],
            vec![Value::str("Brown"), Value::str("CH")],
        ],
    );
    let batches = vec![
        DeltaBatch::new().insert(7, vec![Value::str("Smyth"), Value::str("NY")]),
        DeltaBatch::new()
            .update(3, vec![Value::str("Jomes"), Value::str("LA")])
            .delete(1),
        DeltaBatch::new().delete(7),
    ];

    // Blocked (prefix key → BlockPairs strategy).
    let mut blocked = BigDansing::parallel(2);
    blocked.add_rule(Arc::new(DedupRule::new("udf:dedup", 0, 0.8)));
    assert_oracle_parity(&blocked, &base, batches.clone());

    // Unblocked (no key → UCrossProduct strategy).
    let mut unblocked = BigDansing::parallel(2);
    unblocked.add_rule(Arc::new(
        DedupRule::new("udf:dedup", 0, 0.8).with_block_prefix(0),
    ));
    assert_oracle_parity(&unblocked, &base, batches);
}

#[test]
fn multi_rule_session_matches_full_recompute() {
    let base = tax_table();
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", base.schema()).unwrap();
    sys.add_dc("t1.salary > t2.salary & t1.rate < t2.rate", base.schema())
        .unwrap();
    assert_oracle_parity(&sys, &base, mixed_batches());
}

#[test]
fn bench_style_win_on_small_delta() {
    // A sanity-scale version of the BENCH_incremental criterion: a tiny
    // delta over a wide table must reprocess a small fraction of tuples.
    let n = 2_000i64;
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| row(i % 500, &format!("c{}", i % 500), 1000 + i, 10))
        .collect();
    let base = Table::from_rows("tax", Schema::parse("zipcode,city,salary,rate"), rows);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", base.schema()).unwrap();
    let mut session = sys.open_session(&base, CleanseOptions::default()).unwrap();
    let batch = DeltaBatch::new()
        .update(17, row(17, "dirty", 1017, 10))
        .insert(5_000, row(400, "c400", 1, 1));
    let report = sys.apply_delta(&mut session, batch).unwrap();
    assert!(
        report.tuples_reprocessed < (n as u64) / 10,
        "expected <10% of tuples reprocessed, got {} of {n}",
        report.tuples_reprocessed
    );
    assert!(report.converged);
}
