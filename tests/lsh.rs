//! MinHash/LSH blocking invariants, end to end:
//!
//! * **Determinism** — signatures and band hashes are pure functions of
//!   the input string and geometry (seeded `StableHasher`, no process
//!   state), so every engine shape — and every chaos seed, when this
//!   suite runs in the chaos matrix — enumerates the identical
//!   candidate set and detects the identical violations.
//! * **Single-shot pairs** — a pair colliding in several bands is
//!   compared exactly once (first shared band), so no violation is ever
//!   reported twice, and LSH detections are always a subset of the
//!   exact all-pairs detections.
//! * **Batch ↔ incremental parity** — a session over an LSH-blocked
//!   dedup rule stays byte-identical to a from-scratch cleanse after
//!   every delta batch, including after a durable snapshot + recover.

use bigdansing::{
    apply_batch_to_table, BigDansing, CleanseOptions, DedupRule, DeltaBatch, DurabilityOptions,
    LshParams, Session,
};
use bigdansing_common::minhash::{band_hashes, compute_minhash_signature};
use bigdansing_common::{Schema, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn name_table(names: &[&str]) -> Table {
    Table::from_rows(
        "addr",
        Schema::parse("name,city"),
        names
            .iter()
            .map(|n| vec![Value::str(*n), Value::str("LA")])
            .collect(),
    )
}

fn lsh_rule(threshold: f64) -> Arc<DedupRule> {
    Arc::new(DedupRule::new("udf:dedup", 0, threshold).with_lsh(LshParams::default()))
}

/// Canonical multiset rendering of `(violation, fixes)` pairs (same
/// helper as tests/incremental.rs).
fn canon(detected: &[(bigdansing::Violation, Vec<bigdansing::Fix>)]) -> Vec<String> {
    let mut out: Vec<String> = detected
        .iter()
        .map(|(v, fixes)| format!("{v:?} | {fixes:?}"))
        .collect();
    out.sort();
    out
}

#[test]
fn signatures_and_band_hashes_are_pure_functions() {
    let p = LshParams::default();
    for s in ["Karlsruhe", "karlsruhe", "Sao Paulo", "ab", ""] {
        let sig = compute_minhash_signature(s, p.num_hashes(), p.shingle);
        assert_eq!(
            sig,
            compute_minhash_signature(s, p.num_hashes(), p.shingle),
            "signature of {s:?} not reproducible"
        );
        assert_eq!(
            band_hashes(s, &p),
            band_hashes(s, &p),
            "band hashes of {s:?} not reproducible"
        );
    }
    // case folding happens before shingling
    assert_eq!(
        compute_minhash_signature("Karlsruhe", p.num_hashes(), p.shingle),
        compute_minhash_signature("KARLSRUHE", p.num_hashes(), p.shingle),
    );
}

/// Every engine shape must enumerate the identical candidate set and
/// detect the identical violations: the hashing is seeded and
/// platform-pinned, so parallelism (and, in the chaos matrix, injected
/// faults) must not change the answer.
#[test]
fn detection_is_identical_across_engine_shapes() {
    let table = name_table(&[
        "Jones", "Jonse", "Jomes", "Smith", "Smyth", "Brown", "Braun", "Jones",
    ]);
    let rule = lsh_rule(0.6);
    let mut answers = Vec::new();
    for sys in [
        BigDansing::sequential(),
        BigDansing::parallel(2),
        BigDansing::parallel(4),
    ] {
        let mut sys = sys;
        sys.add_rule(rule.clone());
        let out = sys.detect(&table).unwrap();
        let pairs = sys.engine().metrics().snapshot().lsh_candidate_pairs;
        answers.push((canon(&out.detected), pairs));
    }
    assert!(!answers[0].0.is_empty(), "workload must detect something");
    assert_eq!(answers[0], answers[1], "sequential vs 2-worker diverged");
    assert_eq!(answers[1], answers[2], "2-worker vs 4-worker diverged");
}

/// Signatures are pinned across runs, platforms, and processes: these
/// golden values were produced by the seeded `StableHasher` pipeline
/// and must never drift, or persisted sessions would rebuild different
/// band indexes than the runs that wrote them.
#[test]
fn signature_golden_values_are_stable() {
    let sig = compute_minhash_signature("jones", 4, 2);
    assert_eq!(sig, vec![GOLDEN[0], GOLDEN[1], GOLDEN[2], GOLDEN[3]]);
}

const GOLDEN: [u64; 4] = [
    6906393277733396176,
    5713052120244571766,
    376723305296035101,
    1958295583924779440,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A pair sharing several bands is compared exactly once: no
    /// violation is ever emitted twice, and the LSH-detected set is a
    /// subset of the exact all-pairs (UCrossProduct) detections.
    #[test]
    fn cross_band_dedup_never_double_detects(
        names in prop::collection::vec("[ab]{0,5}", 2..10)
    ) {
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let table = name_table(&refs);

        // maximally collision-prone geometry: 1 row per band makes
        // similar strings share *many* bands
        let mut lsh_sys = BigDansing::parallel(2);
        lsh_sys.add_rule(Arc::new(
            DedupRule::new("udf:dedup", 0, 0.5).with_lsh(LshParams {
                bands: 16,
                rows_per_band: 1,
                shingle: 2,
            }),
        ));
        let lsh = canon(&lsh_sys.detect(&table).unwrap().detected);
        for w in lsh.windows(2) {
            prop_assert_ne!(&w[0], &w[1], "pair detected twice");
        }

        // exact oracle: the same rule with all-pairs enumeration
        let mut exact_sys = BigDansing::parallel(2);
        exact_sys.add_rule(Arc::new(
            DedupRule::new("udf:dedup", 0, 0.5).with_block_prefix(0),
        ));
        let exact = canon(&exact_sys.detect(&table).unwrap().detected);
        for v in &lsh {
            prop_assert!(exact.contains(v), "LSH invented a violation: {}", v);
        }
    }
}

/// Drive batches through an LSH-blocked session and, in lockstep,
/// through the from-scratch oracle (the tests/incremental.rs pattern).
fn assert_oracle_parity(sys: &BigDansing, base: &Table, batches: Vec<DeltaBatch>) {
    let options = CleanseOptions::default();
    let mut session: Session = sys.open_session(base, options.clone()).unwrap();
    let full = sys.detect(base).unwrap();
    assert_eq!(
        canon(&session.detected()),
        canon(&full.detected),
        "initial store differs from full detect"
    );
    let mut current = base.clone();
    for (i, batch) in batches.into_iter().enumerate() {
        current = apply_batch_to_table(&current, &batch).unwrap();
        sys.apply_delta(&mut session, batch).unwrap();
        let oracle = sys.cleanse(&current, options.clone()).unwrap();
        assert_eq!(
            format!("{:?}", session.table().tuples()),
            format!("{:?}", oracle.table.tuples()),
            "batch {i}: repaired table differs from full recompute"
        );
        let residue = sys.detect(&oracle.table).unwrap();
        assert_eq!(
            canon(&session.detected()),
            canon(&residue.detected),
            "batch {i}: violation store differs from full recompute"
        );
        current = oracle.table;
    }
}

fn lsh_batches() -> Vec<DeltaBatch> {
    vec![
        // insert a near-duplicate of an existing name and a stranger
        DeltaBatch::new()
            .insert(10, vec![Value::str("Jonez"), Value::str("LA")])
            .insert(11, vec![Value::str("Zebra"), Value::str("NY")]),
        // update re-banding a tuple; delete retracts its violations
        DeltaBatch::new()
            .update(2, vec![Value::str("Smith"), Value::str("NY")])
            .delete(1),
        // delete + reinsert the same id as a different near-duplicate
        DeltaBatch::new()
            .delete(0)
            .insert(0, vec![Value::str("Smyth"), Value::str("NY")]),
        DeltaBatch::new(),
        DeltaBatch::new().delete(10),
    ]
}

#[test]
fn lsh_session_matches_full_recompute() {
    let base = name_table(&["Jones", "Jonse", "Jomes", "Smith", "Brown"]);
    let mut sys = BigDansing::parallel(2);
    sys.add_rule(lsh_rule(0.8));
    assert_oracle_parity(&sys, &base, lsh_batches());
}

/// The LSH band index is rebuilt deterministically from a durable
/// snapshot: a recovered session must continue byte-identical to an
/// uninterrupted one (and so to the from-scratch oracle).
#[test]
fn durable_lsh_session_survives_snapshot_and_recover() {
    let root = std::env::temp_dir().join(format!("bd-lsh-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let base = name_table(&["Jones", "Jonse", "Jomes", "Smith", "Brown"]);
    let system = || {
        let mut sys = BigDansing::parallel(2);
        sys.add_rule(lsh_rule(0.8));
        sys
    };
    let batches = lsh_batches();
    let (head, tail) = batches.split_at(2);

    // durable session: apply the head, snapshot every batch, drop
    let sys = system();
    let mut s = sys
        .open_durable_session(
            &base,
            CleanseOptions::default(),
            DurabilityOptions::new(&root).snapshot_every(1),
        )
        .unwrap();
    for b in head {
        sys.apply_delta(&mut s, b.clone()).unwrap();
    }
    drop(s);

    // recover and keep going with the tail
    let rec_sys = system();
    let (mut recovered, _) = rec_sys
        .recover_session(CleanseOptions::default(), DurabilityOptions::new(&root))
        .unwrap();
    for b in tail {
        rec_sys.apply_delta(&mut recovered, b.clone()).unwrap();
    }

    // uninterrupted oracle session over the same batches
    let oracle_sys = system();
    let mut oracle = oracle_sys
        .open_session(&base, CleanseOptions::default())
        .unwrap();
    for b in &batches {
        oracle_sys.apply_delta(&mut oracle, b.clone()).unwrap();
    }

    assert_eq!(
        format!("{:?}", recovered.table().tuples()),
        format!("{:?}", oracle.table().tuples()),
        "recovered table diverged from the uninterrupted session"
    );
    assert_eq!(
        canon(&recovered.detected()),
        canon(&oracle.detected()),
        "recovered violation store diverged from the uninterrupted session"
    );
    let _ = std::fs::remove_dir_all(&root);
}
