//! Resource-governance acceptance tests: cooperative cancellation,
//! wall-clock deadlines, memory budgets, and admission control, wired
//! end to end through the `BigDansing` façade.
//!
//! Timing-dependent tests are made deterministic with the seeded
//! [`FaultInjector`]'s delay injection: when *every* task sleeps a fixed
//! duration, a stage over P partitions on W workers takes at least
//! `P / W × delay` — so deadlines and cancellation points can be placed
//! with arithmetic instead of luck.

use bigdansing::{
    AdmissionControl, BigDansing, CancelReason, CleanseOptions, Engine, Error, ExecMode,
    FaultInjector, IsolationOptions, MemoryBudget, RuleHealth,
};
use bigdansing_common::metrics::Metrics;
use bigdansing_common::{Cell, Schema, Table, Value};
use bigdansing_datagen::tax;
use bigdansing_plan::Executor;
use bigdansing_rules::{DcRule, FdRule, Rule, UdfRule, UnitKind, Violation};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

type VKey = BTreeSet<(Cell, String)>;

fn keys(vs: Vec<&Violation>) -> BTreeSet<VKey> {
    vs.into_iter()
        .map(|v| {
            v.cells()
                .iter()
                .map(|(c, val)| (*c, val.to_string()))
                .collect()
        })
        .collect()
}

fn taxa_fd() -> (Table, Arc<dyn Rule>) {
    let gt = tax::taxa(600, 0.10, 11);
    let rule: Arc<dyn Rule> =
        Arc::new(FdRule::parse("zipcode -> city", gt.dirty.schema()).unwrap());
    (gt.dirty, rule)
}

fn sequential_oracle(table: &Table, rule: &Arc<dyn Rule>) -> BTreeSet<VKey> {
    let exec = Executor::new(Engine::sequential());
    let out = exec.detect(table, &[Arc::clone(rule)]).unwrap();
    keys(out.detected.iter().map(|(v, _)| v).collect())
}

fn spill_dir_is_empty(e: &Engine) -> bool {
    match std::fs::read_dir(e.spill_dir()) {
        Ok(rd) => rd.count() == 0,
        Err(_) => true, // never created, or already removed
    }
}

/// The headline acceptance test: a job with a 50 ms deadline on a
/// delay-injected engine is cancelled with `DeadlineExceeded` and its
/// spill files removed, while a sibling job admitted through the same
/// gate completes identical to the Sequential oracle.
#[test]
fn deadline_trips_doomed_job_while_admitted_sibling_matches_oracle() {
    let (table, rule) = taxa_fd();
    let oracle = sequential_oracle(&table, &rule);
    let adm = AdmissionControl::queue(1, 4);

    // Every task sleeps 20 ms: 8 default partitions on 2 workers means
    // the first stage alone takes ≥ 80 ms, well past the 50 ms deadline.
    let doomed_engine = Engine::builder(ExecMode::DiskBacked)
        .workers(2)
        .fault_injector(FaultInjector::seeded(9).with_delays(1.0, Duration::from_millis(20)))
        .build();
    let mut doomed_sys = BigDansing::on_engine(doomed_engine.clone())
        .with_deadline(Duration::from_millis(50))
        .with_admission(adm.clone());
    doomed_sys
        .add_fd("zipcode -> city", table.schema())
        .unwrap();
    let doomed_table = table.clone();
    let doomed = std::thread::spawn(move || doomed_sys.detect(&doomed_table).map(|_| ()));

    let mut sibling = BigDansing::parallel(2).with_admission(adm);
    sibling.add_fd("zipcode -> city", table.schema()).unwrap();
    let sib_out = sibling.detect(&table).unwrap();
    assert_eq!(
        oracle,
        keys(sib_out.detected.iter().map(|(v, _)| v).collect()),
        "sibling job diverged from the Sequential oracle"
    );

    let err = doomed.join().unwrap().unwrap_err();
    match err {
        Error::Cancelled { reason, .. } => assert_eq!(reason, CancelReason::DeadlineExceeded),
        other => panic!("expected Error::Cancelled, got {other:?}"),
    }
    let m = doomed_engine.metrics();
    assert!(Metrics::get(&m.deadline_trips) >= 1, "watchdog never fired");
    assert!(Metrics::get(&m.jobs_cancelled) >= 1);
    assert!(
        spill_dir_is_empty(&doomed_engine),
        "cancelled job left orphan spill files in {}",
        doomed_engine.spill_dir().display()
    );
}

/// User-initiated cancellation mid-OCJoin: the token tripped from
/// another thread surfaces as a typed `Error::Cancelled` and the job's
/// spill files are cleaned up.
#[test]
fn user_cancellation_mid_ocjoin_leaves_no_orphan_spill_files() {
    let gt = tax::taxb(300, 0.10, 12);
    let rule: Arc<dyn Rule> = Arc::new(
        DcRule::parse(
            "t1.salary > t2.salary & t1.rate < t2.rate",
            gt.dirty.schema(),
        )
        .unwrap(),
    );
    // Every task sleeps 50 ms ⇒ the scope stage alone takes ≥ 200 ms;
    // a cancel at 60 ms is guaranteed to land mid-job.
    let engine = Engine::builder(ExecMode::DiskBacked)
        .workers(2)
        .fault_injector(FaultInjector::seeded(21).with_delays(1.0, Duration::from_millis(50)))
        .build();
    let guard = engine.begin_job("ocjoin-cancel", None);
    let token = guard.token().clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        token.cancel(CancelReason::User)
    });
    let exec = Executor::new(engine.clone());
    let result = guard.complete(exec.detect(&gt.dirty, &[rule]));
    assert!(canceller.join().unwrap(), "cancel arrived after completion");
    match result.unwrap_err() {
        Error::Cancelled { job, reason } => {
            assert_eq!(job, "ocjoin-cancel");
            assert_eq!(reason, CancelReason::User);
        }
        other => panic!("expected Error::Cancelled, got {other:?}"),
    }
    assert_eq!(Metrics::get(&engine.metrics().jobs_cancelled), 1);
    assert!(
        spill_dir_is_empty(&engine),
        "cancelled job left orphan spill files in {}",
        engine.spill_dir().display()
    );
}

/// A deadline that trips inside the detect ⇄ repair loop is
/// deterministic under seeded delay injection: two identical runs
/// produce the same typed error and the same trip count.
#[test]
fn deadline_trip_during_repair_is_deterministic() {
    let gt = tax::taxa(300, 0.20, 17);
    let run = || {
        let engine = Engine::builder(ExecMode::Parallel)
            .workers(2)
            .fault_injector(FaultInjector::seeded(5).with_delays(1.0, Duration::from_millis(10)))
            .build();
        let metrics = engine.metrics().clone();
        let mut sys = BigDansing::on_engine(engine).with_deadline(Duration::from_millis(120));
        sys.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
        let err = sys
            .cleanse(&gt.dirty, CleanseOptions::default())
            .unwrap_err();
        let reason = match err {
            Error::Cancelled { reason, .. } => reason,
            other => panic!("expected Error::Cancelled, got {other:?}"),
        };
        (reason, Metrics::get(&metrics.deadline_trips))
    };
    let first = run();
    let second = run();
    assert_eq!(first, (CancelReason::DeadlineExceeded, 1));
    assert_eq!(first, second, "deadline trip was not deterministic");
}

/// A single dataset past the hard memory ceiling cancels the offending
/// job with `MemoryExceeded` instead of aborting the process or growing
/// without bound.
#[test]
fn hard_memory_ceiling_cancels_the_job_with_memory_exceeded() {
    let (table, _) = taxa_fd();
    let engine = Engine::builder(ExecMode::Parallel)
        .workers(2)
        .memory_budget(MemoryBudget::new(16, 64))
        .build();
    let mut sys = BigDansing::on_engine(engine.clone());
    sys.add_fd("zipcode -> city", table.schema()).unwrap();
    match sys.detect(&table).unwrap_err() {
        Error::Cancelled { reason, .. } => assert_eq!(reason, CancelReason::MemoryExceeded),
        other => panic!("expected Error::Cancelled, got {other:?}"),
    }
    assert_eq!(Metrics::get(&engine.metrics().jobs_cancelled), 1);
}

fn three_city_table() -> Table {
    let schema = Schema::parse("zipcode,city,state");
    Table::from_rows(
        "t",
        schema,
        vec![
            vec![Value::Int(1), Value::str("LA"), Value::str("CA")],
            vec![Value::Int(1), Value::str("SF"), Value::str("CA")],
            vec![Value::Int(1), Value::str("LA"), Value::str("CA")],
            vec![Value::Int(2), Value::str("NY"), Value::str("NY")],
            vec![Value::Int(2), Value::str("NY"), Value::str("NJ")],
        ],
    )
}

fn healthy_rules(schema: &Schema) -> Vec<Arc<dyn Rule>> {
    vec![
        Arc::new(FdRule::parse("zipcode -> city", schema).unwrap()),
        Arc::new(FdRule::parse("zipcode -> state", schema).unwrap()),
    ]
}

/// The fault-isolation acceptance test: a three-rule cleanse in partial
/// mode completes with the always-panicking rule quarantined by its
/// circuit breaker, the repeated panic payload short-circuiting its
/// retry budget, and the healthy rules' repair byte-identical to a run
/// that never registered the faulty rule.
#[test]
fn partial_cleanse_quarantines_panicking_rule_and_matches_oracle() {
    let table = three_city_table();
    let oracle_sys = {
        let mut sys = BigDansing::sequential();
        sys.add_fd("zipcode -> city", table.schema()).unwrap();
        sys.add_fd("zipcode -> state", table.schema()).unwrap();
        sys
    };
    let oracle = oracle_sys
        .cleanse(&table, CleanseOptions::default())
        .unwrap();
    assert!(oracle.converged);

    let mut rules = healthy_rules(table.schema());
    rules.push(Arc::new(
        UdfRule::builder("udf:faulty", |_| panic!("faulty udf"))
            .unit_kind(UnitKind::Single)
            .build(),
    ));
    let engine = Engine::sequential();
    let exec = Executor::new(engine.clone());
    let result = bigdansing::cleanse::cleanse_loop(
        &exec,
        &rules,
        &table,
        CleanseOptions {
            isolation: IsolationOptions::partial(),
            ..Default::default()
        },
    )
    .unwrap();

    assert!(result.converged, "healthy rules must still converge");
    assert_eq!(
        result.table.diff_cells(&oracle.table),
        0,
        "partial-mode repair diverged from the faulty-rule-free oracle"
    );
    assert!(result.outcome.is_degraded());
    assert!(result.outcome.completeness < 1.0);
    let quarantined: Vec<&str> = result.outcome.quarantined().map(|(n, _)| n).collect();
    assert_eq!(quarantined, vec!["udf:faulty"]);
    for (name, health) in &result.outcome.rules {
        if name != "udf:faulty" {
            assert_eq!(*health, RuleHealth::Completed, "{name} should be healthy");
        }
    }
    let m = engine.metrics().snapshot();
    assert!(m.breaker_trips >= 1, "breaker never opened");
    assert!(m.rules_quarantined >= 1);
    assert!(
        m.retries_short_circuited >= 1,
        "repeated panic payloads should fail fast instead of burning the retry budget"
    );
}

/// A rule that hangs (sleeps far past the soft per-rule time budget) is
/// timed out between detect units and quarantined in partial mode; in
/// strict mode the same timeout is a typed rule error.
#[test]
fn hung_rule_is_timed_out_and_quarantined_in_partial_mode() {
    let table = three_city_table();
    let hanging = || -> Arc<dyn Rule> {
        Arc::new(
            UdfRule::builder("udf:hung", |_| {
                std::thread::sleep(Duration::from_millis(120));
                vec![]
            })
            .unit_kind(UnitKind::Single)
            .build(),
        )
    };
    let mut iso = IsolationOptions::partial();
    iso.rule_time_budget = Some(Duration::from_millis(40));

    let mut rules = healthy_rules(table.schema());
    rules.push(hanging());
    let exec = Executor::new(Engine::sequential());
    let result = bigdansing::cleanse::cleanse_loop(
        &exec,
        &rules,
        &table,
        CleanseOptions {
            isolation: iso,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(result.converged, "healthy rules must still converge");
    let causes: Vec<(&str, &str)> = result.outcome.quarantined().collect();
    assert_eq!(causes.len(), 1, "outcome: {:?}", result.outcome);
    assert_eq!(causes[0].0, "udf:hung");
    assert!(
        causes[0].1.contains("time budget"),
        "cause should name the budget: {}",
        causes[0].1
    );
    assert!(result.outcome.completeness < 1.0);

    // Strict mode: the same hang is a typed, rule-attributed error.
    let strict_iso = IsolationOptions {
        rule_time_budget: Some(Duration::from_millis(40)),
        ..Default::default()
    };
    let err = bigdansing::cleanse::cleanse_loop(
        &Executor::new(Engine::sequential()),
        &rules,
        &table,
        CleanseOptions {
            isolation: strict_iso,
            ..Default::default()
        },
    )
    .unwrap_err();
    match err {
        Error::Rule { rule, cause } => {
            assert_eq!(rule, "udf:hung");
            assert!(cause.contains("time budget"), "{cause}");
        }
        other => panic!("expected Error::Rule, got {other:?}"),
    }
}

/// Two systems sharing one reject-on-full gate: while the first system's
/// job holds the single slot, the second system's job is rejected with a
/// typed error, and the first still completes.
#[test]
fn shared_admission_gate_rejects_overflow_across_systems() {
    let (table, _) = taxa_fd();
    let adm = AdmissionControl::reject(1);

    let slow_engine = Engine::builder(ExecMode::Parallel)
        .workers(2)
        .fault_injector(FaultInjector::seeded(3).with_delays(1.0, Duration::from_millis(20)))
        .build();
    let mut slow = BigDansing::on_engine(slow_engine.clone()).with_admission(adm.clone());
    slow.add_fd("zipcode -> city", table.schema()).unwrap();
    let slow_table = table.clone();
    let slow_job =
        std::thread::spawn(move || slow.detect(&slow_table).map(|o| o.violation_count()));

    // `tuples_scanned` is bumped by the load *inside* the governed job,
    // i.e. strictly after admission — once it is nonzero the slot is
    // held, and ≥ 160 ms of injected delays remain.
    while Metrics::get(&slow_engine.metrics().tuples_scanned) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let fast_engine = Engine::parallel(2);
    let mut fast = BigDansing::on_engine(fast_engine.clone()).with_admission(adm);
    fast.add_fd("zipcode -> city", table.schema()).unwrap();
    match fast.detect(&table).unwrap_err() {
        Error::Rejected { limit, .. } => assert_eq!(limit, 1),
        other => panic!("expected Error::Rejected, got {other:?}"),
    }
    assert_eq!(Metrics::get(&fast_engine.metrics().jobs_rejected), 1);

    let count = slow_job.join().unwrap().unwrap();
    assert!(count > 0, "slow job should have found violations");
}
