//! Repair-quality integration tests — the Table 4 claims at test scale:
//! the equivalence-class algorithm restores most injected errors on HAI,
//! distributed and centralized repairs match exactly, and the dedup /
//! DC paths improve their respective measures.

use bigdansing::{BigDansing, CleanseOptions, RepairStrategy};
use bigdansing_datagen::{hai, tax};
use std::sync::Arc;

fn cleanse_hai(combo: hai::RuleCombo, strategy: RepairStrategy, seed: u64) -> (f64, f64, usize) {
    let gt = hai::hai(2_000, combo, 0.10, seed);
    let mut sys = BigDansing::parallel(2);
    for spec in combo.fd_specs() {
        sys.add_fd(spec, gt.dirty.schema()).unwrap();
    }
    let res = sys
        .cleanse(
            &gt.dirty,
            CleanseOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap();
    let q = gt.evaluate(&res.table);
    (q.precision, q.recall, res.iterations.max(1))
}

#[test]
fn hai_phi6_equivalence_class_quality() {
    let (precision, recall, iters) = cleanse_hai(
        hai::RuleCombo::Phi6,
        RepairStrategy::DistributedEquivalence,
        21,
    );
    // blocks have ~6 rows at 10% errors: the majority value is almost
    // always the clean one (paper reports 0.90+/0.84+ on real HAI)
    assert!(precision > 0.9, "precision {precision}");
    assert!(recall > 0.8, "recall {recall}");
    assert!(iters <= 3);
}

#[test]
fn hai_rule_combinations_keep_quality() {
    for combo in [hai::RuleCombo::Phi6And7, hai::RuleCombo::Phi6To8] {
        let (precision, recall, _) = cleanse_hai(combo, RepairStrategy::DistributedEquivalence, 22);
        assert!(precision > 0.8, "{combo:?}: precision {precision}");
        assert!(recall > 0.6, "{combo:?}: recall {recall}");
    }
}

#[test]
fn distributed_matches_centralized_quality_exactly() {
    for combo in [hai::RuleCombo::Phi6, hai::RuleCombo::Phi6And7] {
        let (p1, r1, i1) = cleanse_hai(combo, RepairStrategy::DistributedEquivalence, 23);
        let (p2, r2, i2) = cleanse_hai(
            combo,
            RepairStrategy::SerialBlackBox(Arc::new(bigdansing_repair::EquivalenceClassRepair)),
            23,
        );
        assert_eq!((p1, r1, i1), (p2, r2, i2), "{combo:?}");
    }
}

#[test]
fn fd_repair_restores_majority_values() {
    // with low error rates the dirty value is the block minority, so
    // equivalence-class repair recovers the exact clean value; recall is
    // bounded by singleton blocks (an error with no block-mate is
    // undetectable by an FD), so the table must be several times larger
    // than the zipcode pool
    let gt = tax::taxa(8_000, 0.02, 24);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
    sys.add_fd("zipcode -> state", gt.dirty.schema()).unwrap();
    let res = sys.cleanse(&gt.dirty, CleanseOptions::default()).unwrap();
    let q = gt.evaluate(&res.table);
    assert!(q.precision > 0.95, "precision {}", q.precision);
    assert!(q.recall > 0.75, "recall {}", q.recall);
}

#[test]
fn repair_cost_tracks_cell_changes() {
    let gt = tax::taxa(1_000, 0.10, 25);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
    let res = sys.cleanse(&gt.dirty, CleanseOptions::default()).unwrap();
    assert!(res.repair_cost > 0.0);
    assert!(
        res.repair_cost <= res.cells_changed as f64,
        "distance ≤ 1 per cell"
    );
}
