//! The fused repair data path, end to end: semi-naive BSP components
//! against the union-find oracle, the zero-copy component-grouping
//! gate, and the master/slave partitioned path against the serial
//! oracle on randomized equivalence-class inputs.
//!
//! Deep-clone accounting is process-global, so tests that produce or
//! assert on the counter take a shared lock (the partitioned path
//! overlays violations — a metered clone — while the grouping path must
//! stay at zero).

use bigdansing_common::{Cell, Value};
use bigdansing_dataflow::Engine;
use bigdansing_repair::blackbox::RepairOptions;
use bigdansing_repair::cc::{components_bsp_edges, components_union_find};
use bigdansing_repair::fixeval::violation_resolved;
use bigdansing_repair::{repair_parallel, repair_serial, Detected, EquivalenceClassRepair};
use bigdansing_rules::{Fix, Violation};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn fd_detected(a: u64, va: &str, b: u64, vb: &str, attr: usize) -> Detected {
    let ca = Cell::new(a, attr);
    let cb = Cell::new(b, attr);
    let mut v = Violation::new("fd");
    v.add_cell(ca, Value::str(va));
    v.add_cell(cb, Value::str(vb));
    (
        v,
        vec![Fix::assign_cell(ca, Value::str(va), cb, Value::str(vb))],
    )
}

/// Group edge labels into a canonical partition: indexes grouped by
/// label, groups ordered by their smallest member. Union-find and BSP
/// pick different representative labels for the same partition.
fn partition(labels: &[u64]) -> Vec<Vec<usize>> {
    let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

#[test]
fn bsp_components_match_union_find_on_chain_star_and_mesh() {
    let engine = Engine::parallel(3);
    // chain 0-1-2-3, star around 10, a 3-clique, and an isolated edge
    let edges: Vec<Vec<u64>> = vec![
        vec![0, 1],
        vec![1, 2],
        vec![2, 3],
        vec![10, 11],
        vec![10, 12],
        vec![10, 13],
        vec![20, 21],
        vec![21, 22],
        vec![20, 22],
        vec![30, 31],
    ];
    let bsp = components_bsp_edges(&engine, &edges).unwrap();
    let oracle = components_union_find(&edges);
    assert_eq!(partition(&bsp), partition(&oracle));
    assert_eq!(partition(&bsp).len(), 4);
}

#[test]
fn fused_repair_is_zero_copy_and_metered() {
    let _serial = lock();
    let detected: Vec<Detected> = (0..32)
        .map(|i| fd_detected(10 * i, "LA", 10 * i + 1, "SF", 2))
        .collect();
    let engine = Engine::parallel(4);
    let assign = repair_parallel(
        &engine,
        &detected,
        &EquivalenceClassRepair,
        RepairOptions::default(),
    )
    .unwrap();
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.components_found, 32);
    assert!(snap.cc_supersteps >= 1, "BSP must report its supersteps");
    assert_eq!(snap.repair_cells_assigned, assign.len() as u64);
    assert_eq!(
        snap.tuples_cloned, 0,
        "the component-grouping path moves indexes, never violation clones"
    );
    assert!(engine.explain().contains("repair"));
    for d in &detected {
        assert!(violation_resolved(d, &assign));
    }
}

/// One star block: a clean cell whose value sorts below every dirty
/// value, and one violation per dirty cell pairing it with the clean
/// cell. Within a class all candidate frequencies tie at 1, so the
/// equivalence-class algorithm picks the smallest value — the clean one
/// — in the serial oracle, in every k-way slave partition, and in the
/// whole component alike. That makes the master/slave reconciliation
/// conflict-free and provably equal to the oracle.
fn star_block(block: u64, attr: usize, dirty: &[&str]) -> Vec<Detected> {
    let base = 1000 * block;
    let clean = Cell::new(base, attr);
    dirty
        .iter()
        .enumerate()
        .map(|(j, dv)| {
            let cell = Cell::new(base + 1 + j as u64, attr);
            let mut v = Violation::new("fd");
            v.add_cell(cell, Value::str(*dv));
            v.add_cell(clean, Value::str("A"));
            (
                v,
                vec![Fix::assign_cell(
                    cell,
                    Value::str(*dv),
                    clean,
                    Value::str("A"),
                )],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn partitioned_repair_converges_to_the_serial_oracle(
        blocks in prop::collection::vec((0usize..3, 1usize..5), 1..6),
        k in 2usize..5,
    ) {
        const POOL: [&str; 4] = ["pA", "qB", "rC", "sD"];
        let _serial = lock();
        let detected: Vec<Detected> = blocks
            .iter()
            .enumerate()
            .flat_map(|(b, (attr, cnt))| star_block(b as u64, *attr, &POOL[..*cnt]))
            .collect();
        let serial = repair_serial(&detected, &EquivalenceClassRepair);
        // force every multi-violation component through the k-way
        // master/slave path
        let engine = Engine::parallel(3);
        let partitioned = repair_parallel(
            &engine,
            &detected,
            &EquivalenceClassRepair,
            RepairOptions { max_component_size: 1, k },
        )
        .unwrap();
        prop_assert_eq!(&partitioned, &serial);
        // conflict-free convergence: the merged assignment resolves
        // every violation
        for d in &detected {
            prop_assert!(violation_resolved(d, &partitioned));
        }
    }
}
