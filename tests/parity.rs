//! Cross-system parity: every execution strategy, enhancer, and baseline
//! must agree on the *set* of violations; every repair distribution
//! strategy must agree with its centralized original.

use bigdansing::{BigDansing, CleanseOptions, RepairStrategy};
use bigdansing_baselines::{dedup_violations, nadeef, shark, sparksql, sqlengine};
use bigdansing_common::{Cell, Table};
use bigdansing_dataflow::Engine;
use bigdansing_datagen::{tax, tpch};
use bigdansing_plan::{Executor, IterateStrategy, RulePipeline};
use bigdansing_repair::EquivalenceClassRepair;
use bigdansing_rules::{DcRule, FdRule, Rule, Violation};
use std::collections::BTreeSet;
use std::sync::Arc;

type VKey = BTreeSet<(Cell, String)>;

fn keys(vs: Vec<&Violation>) -> BTreeSet<VKey> {
    vs.into_iter()
        .map(|v| {
            v.cells()
                .iter()
                .map(|(c, val)| (*c, val.to_string()))
                .collect()
        })
        .collect()
}

fn owned_keys(vs: &[Violation]) -> BTreeSet<VKey> {
    keys(vs.iter().collect())
}

fn phi1_data() -> (Table, Arc<dyn Rule>) {
    let gt = tax::taxa(600, 0.10, 11);
    let rule: Arc<dyn Rule> =
        Arc::new(FdRule::parse("zipcode -> city", gt.dirty.schema()).unwrap());
    (gt.dirty, rule)
}

fn phi2_data() -> (Table, Arc<dyn Rule>) {
    let gt = tax::taxb(300, 0.10, 12);
    let rule: Arc<dyn Rule> = Arc::new(
        DcRule::parse("t1.salary > t2.salary & t1.rate < t2.rate", gt.dirty.schema()).unwrap(),
    );
    (gt.dirty, rule)
}

#[test]
fn engines_agree_on_violation_sets() {
    for (table, rule) in [phi1_data(), phi2_data()] {
        let run = |e: Engine| {
            let exec = Executor::new(e);
            let out = exec.detect(&table, &[Arc::clone(&rule)]);
            keys(out.detected.iter().map(|(v, _)| v).collect())
        };
        let seq = run(Engine::sequential());
        assert_eq!(seq, run(Engine::parallel(2)), "{}", rule.name());
        assert_eq!(seq, run(Engine::parallel(7)), "{}", rule.name());
        assert_eq!(seq, run(Engine::disk_backed(2)), "{}", rule.name());
        assert!(!seq.is_empty());
    }
}

#[test]
fn bigdansing_matches_every_baseline_on_fd() {
    let (table, rule) = phi1_data();
    let exec = Executor::new(Engine::parallel(2));
    let bd = keys(
        exec.detect(&table, &[Arc::clone(&rule)])
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    let nad: Vec<Violation> = nadeef::detect(&table, &[Arc::clone(&rule)])
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    assert_eq!(bd, owned_keys(&nad));
    let e = Engine::sequential();
    let pg = dedup_violations(sqlengine::detect(&e, &table, &rule));
    assert_eq!(bd, owned_keys(&pg));
    let e = Engine::parallel(2);
    let ss = dedup_violations(sparksql::detect(&e, &table, &rule));
    assert_eq!(bd, owned_keys(&ss));
    let sh = dedup_violations(shark::detect(&e, &table, &rule));
    assert_eq!(bd, owned_keys(&sh));
}

#[test]
fn bigdansing_matches_every_baseline_on_inequality_dc() {
    let (table, rule) = phi2_data();
    let exec = Executor::new(Engine::parallel(2));
    let bd = keys(
        exec.detect(&table, &[Arc::clone(&rule)])
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    let nad: Vec<Violation> = nadeef::detect(&table, &[Arc::clone(&rule)])
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    assert_eq!(bd, owned_keys(&nad), "NADEEF disagrees");
    let e = Engine::sequential();
    let pg = sqlengine::detect(&e, &table, &rule);
    assert_eq!(bd, owned_keys(&pg), "PostgreSQL-sim disagrees");
    let e = Engine::parallel(2);
    let sh = shark::detect(&e, &table, &rule);
    assert_eq!(bd, owned_keys(&sh), "Shark-sim disagrees");
}

#[test]
fn ocjoin_pipeline_matches_cross_product_pipeline() {
    let (table, rule) = phi2_data();
    let exec = Executor::new(Engine::parallel(2));
    let conds = rule.ordering_conditions();
    let run = |strategy: IterateStrategy| {
        let p = RulePipeline {
            rule: Arc::clone(&rule),
            source: "t".into(),
            use_scope: true,
            strategy,
            use_genfix: false,
        };
        let out = exec.run_pipeline(exec.load(&table), &p);
        keys(out.detected.iter().map(|(v, _)| v).collect())
    };
    let oc = run(IterateStrategy::OcJoin(conds));
    let cp = run(IterateStrategy::CrossProduct);
    assert_eq!(oc, cp);
    assert!(!oc.is_empty());
}

#[test]
fn blocked_and_detect_only_find_the_same_fd_violations() {
    // FD scope is not identity, so build an identity-scope rule via a
    // pre-projected table
    let gt = tax::taxa(400, 0.10, 13);
    let rule: Arc<dyn Rule> =
        Arc::new(FdRule::from_indices("fd:zip->city", vec![0], vec![1]));
    let projected = Table::from_rows(
        "p",
        bigdansing_common::Schema::parse("zipcode,city"),
        gt.dirty
            .tuples()
            .iter()
            .map(|t| vec![t.value(tax::attr::ZIPCODE).clone(), t.value(tax::attr::CITY).clone()])
            .collect(),
    );
    let exec = Executor::new(Engine::parallel(2));
    let blocked = keys(
        exec.detect(&projected, &[Arc::clone(&rule)])
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    let only = keys(
        exec.detect_only(&projected, rule)
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    assert_eq!(blocked, only);
}

#[test]
fn distributed_and_serial_equivalence_class_repair_identically() {
    let gt = tpch::tpch(800, 0.10, 14);
    let run = |strategy: RepairStrategy| {
        let mut sys = BigDansing::parallel(2);
        sys.add_fd("o_custkey -> c_address", gt.dirty.schema()).unwrap();
        sys.cleanse(
            &gt.dirty,
            CleanseOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap()
        .table
    };
    let a = run(RepairStrategy::DistributedEquivalence);
    let b = run(RepairStrategy::SerialBlackBox(Arc::new(EquivalenceClassRepair)));
    let c = run(RepairStrategy::ParallelBlackBox(Arc::new(EquivalenceClassRepair)));
    assert_eq!(a.diff_cells(&b), 0, "distributed vs serial");
    assert_eq!(a.diff_cells(&c), 0, "distributed vs per-CC parallel");
}

#[test]
fn shared_scan_and_unconsolidated_detection_agree() {
    let gt = tax::taxa(500, 0.10, 15);
    let rules: Vec<Arc<dyn Rule>> = vec![
        Arc::new(FdRule::parse("zipcode -> city", gt.dirty.schema()).unwrap()),
        Arc::new(FdRule::parse("zipcode -> state", gt.dirty.schema()).unwrap()),
    ];
    let exec = Executor::new(Engine::parallel(2));
    let shared = exec.detect(&gt.dirty, &rules);
    let separate = exec.detect_unconsolidated(&gt.dirty, &rules);
    assert_eq!(
        keys(shared.detected.iter().map(|(v, _)| v).collect()),
        keys(separate.detected.iter().map(|(v, _)| v).collect())
    );
}
