//! Cross-system parity: every execution strategy, enhancer, and baseline
//! must agree on the *set* of violations; every repair distribution
//! strategy must agree with its centralized original.

use bigdansing::{BigDansing, CleanseOptions, RepairStrategy};
use bigdansing_baselines::{dedup_violations, nadeef, shark, sparksql, sqlengine};
use bigdansing_common::metrics::Metrics;
use bigdansing_common::{Cell, Error, Schema, Table, Value};
use bigdansing_dataflow::{Engine, ExecMode, FaultInjector, FaultPolicy, MemoryBudget};
use bigdansing_datagen::{tax, tpch};
use bigdansing_plan::{DetectOutput, Executor, IterateStrategy, RulePipeline};
use bigdansing_repair::EquivalenceClassRepair;
use bigdansing_rules::{CfdRule, DcRule, DedupRule, FdRule, Rule, Violation};
use std::collections::BTreeSet;
use std::sync::Arc;

type VKey = BTreeSet<(Cell, String)>;

fn keys(vs: Vec<&Violation>) -> BTreeSet<VKey> {
    vs.into_iter()
        .map(|v| {
            v.cells()
                .iter()
                .map(|(c, val)| (*c, val.to_string()))
                .collect()
        })
        .collect()
}

fn owned_keys(vs: &[Violation]) -> BTreeSet<VKey> {
    keys(vs.iter().collect())
}

fn phi1_data() -> (Table, Arc<dyn Rule>) {
    let gt = tax::taxa(600, 0.10, 11);
    let rule: Arc<dyn Rule> =
        Arc::new(FdRule::parse("zipcode -> city", gt.dirty.schema()).unwrap());
    (gt.dirty, rule)
}

fn phi2_data() -> (Table, Arc<dyn Rule>) {
    let gt = tax::taxb(300, 0.10, 12);
    let rule: Arc<dyn Rule> = Arc::new(
        DcRule::parse(
            "t1.salary > t2.salary & t1.rate < t2.rate",
            gt.dirty.schema(),
        )
        .unwrap(),
    );
    (gt.dirty, rule)
}

#[test]
fn engines_agree_on_violation_sets() {
    for (table, rule) in [phi1_data(), phi2_data()] {
        let run = |e: Engine| {
            let exec = Executor::new(e);
            let out = exec.detect(&table, &[Arc::clone(&rule)]).unwrap();
            keys(out.detected.iter().map(|(v, _)| v).collect())
        };
        let seq = run(Engine::sequential());
        assert_eq!(seq, run(Engine::parallel(2)), "{}", rule.name());
        assert_eq!(seq, run(Engine::parallel(7)), "{}", rule.name());
        assert_eq!(seq, run(Engine::disk_backed(2)), "{}", rule.name());
        assert!(!seq.is_empty());
    }
}

/// An engine with a deterministic fault injector: every partition task has
/// a chance of panicking and every spill read/write a chance of failing,
/// all keyed off a fixed seed so runs are reproducible.
fn faulty_engine(mode: ExecMode, seed: u64) -> Engine {
    Engine::builder(mode)
        .workers(3)
        .fault_policy(FaultPolicy::with_max_attempts(6))
        .fault_injector(
            FaultInjector::seeded(seed)
                .with_task_panics(0.15)
                .with_spill_errors(0.15),
        )
        .build()
}

#[test]
fn engines_agree_on_violations_under_injected_faults() {
    // Acceptance: with seeded injected panics and spill I/O errors, the
    // Parallel and DiskBacked runs complete and match the fault-free
    // Sequential oracle exactly, with nonzero retry/panic counters.
    for (table, rule) in [phi1_data(), phi2_data()] {
        let oracle = {
            let exec = Executor::new(Engine::sequential());
            let out = exec.detect(&table, &[Arc::clone(&rule)]).unwrap();
            keys(out.detected.iter().map(|(v, _)| v).collect())
        };
        for mode in [ExecMode::Parallel, ExecMode::DiskBacked] {
            let engine = faulty_engine(mode, 0xB16D);
            let exec = Executor::new(engine);
            let out = exec.detect(&table, &[Arc::clone(&rule)]).unwrap();
            let got = keys(out.detected.iter().map(|(v, _)| v).collect());
            assert_eq!(oracle, got, "{} under {mode:?} faults", rule.name());
            let m = exec.engine().metrics();
            assert!(
                Metrics::get(&m.panics_caught) > 0,
                "{mode:?}: no panics were injected — injector not wired in"
            );
            assert!(
                Metrics::get(&m.tasks_retried) > 0,
                "{mode:?}: faults occurred but nothing was retried"
            );
        }
    }
}

#[test]
fn pressure_spill_under_memory_budget_matches_unbudgeted_run() {
    // Acceptance: a MemoryBudget far below the working set forces
    // checkpointed datasets to evict to disk (pressure_spills > 0), and
    // the violation set still matches the unbudgeted Sequential oracle.
    // Fused pipelines checkpoint only the detected output (intermediate
    // stages fuse away instead of materializing), so the budget is
    // sized against that one dataset.
    let (table, rule) = phi1_data();
    let oracle = {
        let exec = Executor::new(Engine::sequential());
        let out = exec.detect(&table, &[Arc::clone(&rule)]).unwrap();
        keys(out.detected.iter().map(|(v, _)| v).collect())
    };
    let engine = Engine::builder(ExecMode::Parallel)
        .workers(2)
        .memory_budget(MemoryBudget::new(512, 64 * 1024 * 1024))
        .build();
    let exec = Executor::new(engine);
    let out = exec.detect(&table, &[Arc::clone(&rule)]).unwrap();
    assert_eq!(
        oracle,
        keys(out.detected.iter().map(|(v, _)| v).collect()),
        "budgeted run diverged from the oracle"
    );
    let m = exec.engine().metrics();
    assert!(
        Metrics::get(&m.bytes_tracked) > 512,
        "working set never exceeded the budget — test proves nothing"
    );
    assert!(
        Metrics::get(&m.pressure_spills) > 0,
        "budget below the working set but nothing was evicted"
    );
}

#[test]
fn repairs_agree_under_injected_faults() {
    // The full detect ⇄ repair loop must also be fault-transparent: the
    // repaired table from a faulty engine matches the fault-free one.
    let gt = tax::taxa(400, 0.10, 16);
    let run = |engine: Engine| {
        let mut sys = BigDansing::on_engine(engine);
        sys.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
        sys.cleanse(&gt.dirty, CleanseOptions::default())
            .unwrap()
            .table
    };
    let oracle = run(Engine::sequential());
    let parallel = run(faulty_engine(ExecMode::Parallel, 0xFA157));
    let disk = run(faulty_engine(ExecMode::DiskBacked, 0xFA157));
    assert_eq!(oracle.diff_cells(&parallel), 0, "parallel repair diverged");
    assert_eq!(oracle.diff_cells(&disk), 0, "disk-backed repair diverged");
}

#[test]
fn exhausted_retries_surface_a_typed_task_error() {
    // Acceptance: when every attempt fails, the job returns Error::Task
    // naming the failing partition — it must not propagate a panic.
    let (table, rule) = phi1_data();
    let engine = Engine::builder(ExecMode::Parallel)
        .workers(2)
        .fault_policy(FaultPolicy::with_max_attempts(2))
        .fault_injector(FaultInjector::seeded(7).with_task_panics(1.0))
        .build();
    let exec = Executor::new(engine);
    match exec.detect(&table, &[Arc::clone(&rule)]) {
        Err(Error::Task {
            attempts, cause, ..
        }) => {
            assert_eq!(attempts, 2);
            assert!(cause.contains("injected panic"), "cause: {cause}");
        }
        other => panic!("expected Error::Task, got {other:?}"),
    }
}

#[test]
fn bigdansing_matches_every_baseline_on_fd() {
    let (table, rule) = phi1_data();
    let exec = Executor::new(Engine::parallel(2));
    let bd = keys(
        exec.detect(&table, &[Arc::clone(&rule)])
            .unwrap()
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    let nad: Vec<Violation> = nadeef::detect(&table, &[Arc::clone(&rule)])
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    assert_eq!(bd, owned_keys(&nad));
    let e = Engine::sequential();
    let pg = dedup_violations(sqlengine::detect(&e, &table, &rule));
    assert_eq!(bd, owned_keys(&pg));
    let e = Engine::parallel(2);
    let ss = dedup_violations(sparksql::detect(&e, &table, &rule));
    assert_eq!(bd, owned_keys(&ss));
    let sh = dedup_violations(shark::detect(&e, &table, &rule));
    assert_eq!(bd, owned_keys(&sh));
}

#[test]
fn bigdansing_matches_every_baseline_on_inequality_dc() {
    let (table, rule) = phi2_data();
    let exec = Executor::new(Engine::parallel(2));
    let bd = keys(
        exec.detect(&table, &[Arc::clone(&rule)])
            .unwrap()
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    let nad: Vec<Violation> = nadeef::detect(&table, &[Arc::clone(&rule)])
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    assert_eq!(bd, owned_keys(&nad), "NADEEF disagrees");
    let e = Engine::sequential();
    let pg = sqlengine::detect(&e, &table, &rule);
    assert_eq!(bd, owned_keys(&pg), "PostgreSQL-sim disagrees");
    let e = Engine::parallel(2);
    let sh = shark::detect(&e, &table, &rule);
    assert_eq!(bd, owned_keys(&sh), "Shark-sim disagrees");
}

#[test]
fn ocjoin_pipeline_matches_cross_product_pipeline() {
    let (table, rule) = phi2_data();
    let exec = Executor::new(Engine::parallel(2));
    let conds = rule.ordering_conditions();
    let run = |strategy: IterateStrategy| {
        let p = RulePipeline {
            rule: Arc::clone(&rule),
            source: "t".into(),
            use_scope: true,
            strategy,
            use_genfix: false,
        };
        let out = exec.run_pipeline(exec.load(&table), &p).unwrap();
        keys(out.detected.iter().map(|(v, _)| v).collect())
    };
    let oc = run(IterateStrategy::OcJoin(conds));
    let cp = run(IterateStrategy::CrossProduct);
    assert_eq!(oc, cp);
    assert!(!oc.is_empty());
}

#[test]
fn blocked_and_detect_only_find_the_same_fd_violations() {
    // FD scope is not identity, so build an identity-scope rule via a
    // pre-projected table
    let gt = tax::taxa(400, 0.10, 13);
    let rule: Arc<dyn Rule> = Arc::new(FdRule::from_indices("fd:zip->city", vec![0], vec![1]));
    let projected = Table::from_rows(
        "p",
        bigdansing_common::Schema::parse("zipcode,city"),
        gt.dirty
            .tuples()
            .iter()
            .map(|t| {
                vec![
                    t.value(tax::attr::ZIPCODE).clone(),
                    t.value(tax::attr::CITY).clone(),
                ]
            })
            .collect(),
    );
    let exec = Executor::new(Engine::parallel(2));
    let blocked = keys(
        exec.detect(&projected, &[Arc::clone(&rule)])
            .unwrap()
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    let only = keys(
        exec.detect_only(&projected, rule)
            .unwrap()
            .detected
            .iter()
            .map(|(v, _)| v)
            .collect(),
    );
    assert_eq!(blocked, only);
}

#[test]
fn distributed_and_serial_equivalence_class_repair_identically() {
    let gt = tpch::tpch(800, 0.10, 14);
    let run = |strategy: RepairStrategy| {
        let mut sys = BigDansing::parallel(2);
        sys.add_fd("o_custkey -> c_address", gt.dirty.schema())
            .unwrap();
        sys.cleanse(
            &gt.dirty,
            CleanseOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap()
        .table
    };
    let a = run(RepairStrategy::DistributedEquivalence);
    let b = run(RepairStrategy::SerialBlackBox(Arc::new(
        EquivalenceClassRepair,
    )));
    let c = run(RepairStrategy::ParallelBlackBox(Arc::new(
        EquivalenceClassRepair,
    )));
    assert_eq!(a.diff_cells(&b), 0, "distributed vs serial");
    assert_eq!(a.diff_cells(&c), 0, "distributed vs per-CC parallel");
}

// --------------------------------------------------------------------
// Stage-graph fusion parity: the executor now builds every pipeline on
// the lazy Stage API, so Scope/Block/Iterate/Detect/GenFix fuse into
// few physical passes. Each pipeline shape must produce byte-identical
// violations *and* fixes under fused Parallel/DiskBacked execution —
// including with injected faults and a tight memory budget — compared
// to the Sequential oracle.

/// The full detected output (violations with their generated fixes),
/// order-normalized so engines with different partition interleavings
/// compare byte-for-byte.
fn full_signature(out: &DetectOutput) -> BTreeSet<String> {
    out.detected
        .iter()
        .map(|(v, fixes)| format!("{v:?}|{fixes:?}"))
        .collect()
}

/// A table where the constant CFD `zipcode=90210 → city=LA` applies:
/// every third 90210 row carries SF and violates it.
fn cfd_shape() -> (Table, Arc<dyn Rule>) {
    let rows = (0..240)
        .map(|i| match i % 3 {
            0 => vec![Value::Int(90210), Value::str("LA")],
            1 => vec![Value::Int(90210), Value::str("SF")],
            _ => vec![Value::Int(10001), Value::str("NY")],
        })
        .collect();
    let table = Table::from_rows("cfd", Schema::parse("zipcode,city"), rows);
    let rule: Arc<dyn Rule> = Arc::new(
        CfdRule::parse("zipcode -> city | zipcode=90210, city=LA", table.schema()).unwrap(),
    );
    (table, rule)
}

/// One instance of every physical pipeline shape the translator emits:
/// FD → blocked pairs, constant CFD → single units, inequality DC →
/// OCJoin, unblocked dedup → UCrossProduct.
fn shape_suite() -> Vec<(&'static str, Table, Arc<dyn Rule>)> {
    let fd = tax::taxa(300, 0.10, 21);
    let fd_rule: Arc<dyn Rule> =
        Arc::new(FdRule::parse("zipcode -> city", fd.dirty.schema()).unwrap());
    let (cfd_table, cfd_rule) = cfd_shape();
    let dc = tax::taxb(120, 0.10, 22);
    let dc_rule: Arc<dyn Rule> = Arc::new(
        DcRule::parse(
            "t1.salary > t2.salary & t1.rate < t2.rate",
            dc.dirty.schema(),
        )
        .unwrap(),
    );
    let dd = tax::taxa(80, 0.10, 23);
    let dd_rule: Arc<dyn Rule> =
        Arc::new(DedupRule::new("udf:dedup", tax::attr::CITY, 0.5).with_block_prefix(0));
    vec![
        ("fd/block-pairs", fd.dirty, fd_rule),
        ("cfd/single-units", cfd_table, cfd_rule),
        ("dc/ocjoin", dc.dirty, dc_rule),
        ("dedup/ucross", dd.dirty, dd_rule),
    ]
}

fn detect_signature(engine: Engine, table: &Table, rule: &Arc<dyn Rule>) -> BTreeSet<String> {
    let exec = Executor::new(engine);
    full_signature(&exec.detect(table, &[Arc::clone(rule)]).unwrap())
}

#[test]
fn fused_shapes_match_sequential_oracle() {
    for (shape, table, rule) in shape_suite() {
        let oracle = detect_signature(Engine::sequential(), &table, &rule);
        assert!(!oracle.is_empty(), "{shape}: oracle found nothing");
        for engine in [
            Engine::parallel(2),
            Engine::parallel(5),
            Engine::disk_backed(2),
        ] {
            assert_eq!(
                oracle,
                detect_signature(engine, &table, &rule),
                "{shape}: fused run diverged from the Sequential oracle"
            );
        }
    }
}

#[test]
fn fused_shapes_match_oracle_under_injected_faults() {
    // A retried partition re-runs its whole fused chain; the output must
    // not change. Panic probability is per task, so assert injection
    // fired across the suite rather than per shape.
    let mut panics = 0;
    for (shape, table, rule) in shape_suite() {
        let oracle = detect_signature(Engine::sequential(), &table, &rule);
        let engine = faulty_engine(ExecMode::Parallel, 0xF0_5ED);
        let exec = Executor::new(engine);
        let got = full_signature(&exec.detect(&table, &[Arc::clone(&rule)]).unwrap());
        assert_eq!(oracle, got, "{shape}: diverged under injected faults");
        panics += Metrics::get(&exec.engine().metrics().panics_caught);
    }
    assert!(panics > 0, "no panics injected — injector not wired in");
}

#[test]
fn fused_shapes_match_oracle_under_memory_budget() {
    // A budget far below the working set evicts checkpointed partitions
    // mid-run; re-reading them through the fused pipeline must be exact.
    let mut spills = 0;
    for (shape, table, rule) in shape_suite() {
        let oracle = detect_signature(Engine::sequential(), &table, &rule);
        let engine = Engine::builder(ExecMode::Parallel)
            .workers(2)
            .memory_budget(MemoryBudget::new(4 * 1024, 64 * 1024 * 1024))
            .build();
        let exec = Executor::new(engine);
        let got = full_signature(&exec.detect(&table, &[Arc::clone(&rule)]).unwrap());
        assert_eq!(oracle, got, "{shape}: diverged under a memory budget");
        spills += Metrics::get(&exec.engine().metrics().pressure_spills);
    }
    assert!(
        spills > 0,
        "budget below the working set but nothing spilled"
    );
}

#[test]
fn fd_pipeline_runs_strictly_fewer_passes_than_stages() {
    // Acceptance: a Scope→Block→Iterate→Detect FD pipeline fuses into
    // fewer physical passes than it has logical stages, and the pass
    // counters prove it.
    let (table, rule) = phi1_data();
    let exec = Executor::new(Engine::parallel(2));
    exec.detect(&table, &[rule]).unwrap();
    let m = exec.engine().metrics().snapshot();
    assert!(m.passes_executed > 0, "no passes recorded");
    assert!(m.stages_fused > 0, "nothing fused");
    let logical_stages = m.passes_executed + m.stages_fused;
    assert!(
        m.passes_executed < logical_stages,
        "{} passes for {} logical stages — fusion did nothing",
        m.passes_executed,
        logical_stages
    );
}

#[test]
fn explain_renders_the_fd_stage_graph() {
    let (table, rule) = phi1_data();
    let exec = Executor::new(Engine::parallel(2));
    exec.detect(&table, &[rule]).unwrap();
    let plan = exec.engine().explain();
    assert!(plan.contains("stage graph:"), "{plan}");
    assert!(plan.contains("shuffle-map"), "{plan}");
    assert!(plan.contains("scope(fd:zipcode->city)"), "{plan}");
    assert!(
        plan.contains("iterate+detect+genfix(fd:zipcode->city)"),
        "{plan}"
    );
}

#[test]
fn shared_scan_and_unconsolidated_detection_agree() {
    let gt = tax::taxa(500, 0.10, 15);
    let rules: Vec<Arc<dyn Rule>> = vec![
        Arc::new(FdRule::parse("zipcode -> city", gt.dirty.schema()).unwrap()),
        Arc::new(FdRule::parse("zipcode -> state", gt.dirty.schema()).unwrap()),
    ];
    let exec = Executor::new(Engine::parallel(2));
    let shared = exec.detect(&gt.dirty, &rules).unwrap();
    let separate = exec.detect_unconsolidated(&gt.dirty, &rules).unwrap();
    assert_eq!(
        keys(shared.detected.iter().map(|(v, _)| v).collect()),
        keys(separate.detected.iter().map(|(v, _)| v).collect())
    );
}
