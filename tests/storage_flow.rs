//! Storage-manager integration (Appendix F): CSV → columnar layout →
//! projected load → detection; content-partitioned stores feeding a
//! shuffle-free pushdown that agrees with the regular pipeline.

use bigdansing::{report, BigDansing};
use bigdansing_common::metrics::Metrics;
use bigdansing_dataflow::Engine;
use bigdansing_datagen::tax;
use bigdansing_rules::{FdRule, Rule};
use bigdansing_storage::{layout, PartitionedStore, ReplicatedStore};
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("bigdansing_storage_flow");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn columnar_roundtrip_preserves_detection_results() {
    let gt = tax::taxa(1_000, 0.10, 41);
    let path = tmp("taxa.bdcol");
    layout::write_table(&gt.dirty, &path).unwrap();
    let loaded = layout::read_table(&path).unwrap();

    let mut sys_a = BigDansing::parallel(2);
    sys_a.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
    let mut sys_b = BigDansing::parallel(2);
    sys_b.add_fd("zipcode -> city", loaded.schema()).unwrap();
    assert_eq!(
        sys_a.detect(&gt.dirty).unwrap().violation_count(),
        sys_b.detect(&loaded).unwrap().violation_count()
    );
}

#[test]
fn projected_load_still_serves_the_scoped_rule() {
    let gt = tax::taxa(800, 0.10, 42);
    let path = tmp("taxa_proj.bdcol");
    layout::write_table(&gt.dirty, &path).unwrap();
    // Scope pushdown: only the FD's columns are decoded
    let (projected, bytes) =
        layout::read_with_stats(&path, Some(&[tax::attr::ZIPCODE, tax::attr::CITY])).unwrap();
    let (_, all_bytes) = layout::read_with_stats(&path, None).unwrap();
    assert!(
        bytes < all_bytes / 2,
        "2 of 6 columns decoded: {bytes} vs {all_bytes}"
    );

    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", projected.schema()).unwrap();
    let full = {
        let mut s = BigDansing::parallel(2);
        s.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
        s.detect(&gt.dirty).unwrap().violation_count()
    };
    assert_eq!(sys.detect(&projected).unwrap().violation_count(), full);
}

#[test]
fn replicated_store_serves_multiple_rules_without_shuffles() {
    let gt = tax::taxa(1_200, 0.10, 43);
    let store = ReplicatedStore::build(
        &gt.dirty,
        &[vec![tax::attr::ZIPCODE], vec![tax::attr::CITY]],
    );
    for (spec, key) in [
        ("zipcode -> city", vec![tax::attr::ZIPCODE]),
        ("city -> state", vec![tax::attr::CITY]),
    ] {
        let rule: Arc<dyn Rule> = Arc::new(FdRule::parse(spec, gt.dirty.schema()).unwrap());
        let replica = store.replica_for(&key).expect("replica exists");
        let engine = Engine::parallel(2);
        let pushed = replica.detect_pushdown(&engine, &rule);
        assert_eq!(Metrics::get(&engine.metrics().records_shuffled), 0);
        let mut sys = BigDansing::parallel(2);
        sys.add_rule(Arc::clone(&rule));
        assert_eq!(
            pushed.len(),
            sys.detect(&gt.dirty).unwrap().violation_count(),
            "{spec}"
        );
    }
}

#[test]
fn detect_reports_round_trip_to_disk() {
    let gt = tax::taxa(300, 0.10, 44);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("zipcode -> city", gt.dirty.schema()).unwrap();
    let out = sys.detect(&gt.dirty).unwrap();
    let stem = tmp("audit");
    report::write_reports(&out, Some(&gt.dirty), &stem).unwrap();
    let v = std::fs::read_to_string(tmp("audit.violations.csv")).unwrap();
    // one header + ≥1 row per violation (each has ≥2 cells)
    assert!(v.lines().count() > out.violation_count());
    let f = std::fs::read_to_string(tmp("audit.fixes.csv")).unwrap();
    assert_eq!(f.lines().count(), out.fix_count() + 1);
}

#[test]
fn partitioned_store_keeps_singleton_blocks() {
    // blocks of size 1 produce no candidate pairs but must not be lost
    let gt = tax::taxa(50, 0.0, 45);
    let store = PartitionedStore::build(&gt.dirty, &[tax::attr::ZIPCODE]);
    assert_eq!(store.len(), 50);
    let rule: Arc<dyn Rule> =
        Arc::new(FdRule::parse("zipcode -> city", gt.dirty.schema()).unwrap());
    let engine = Engine::sequential();
    assert!(
        store.detect_pushdown(&engine, &rule).is_empty(),
        "clean data"
    );
}
