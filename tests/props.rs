//! Property-based integration tests: random tables and rules through the
//! full stack.

use bigdansing::{BigDansing, CleanseOptions};
use bigdansing_common::{Schema, Table, Value};
use bigdansing_dataflow::Engine;
use bigdansing_plan::Executor;
use bigdansing_rules::{FdRule, Rule};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..6, 0i64..4, 0i64..4), 0..max_rows).prop_map(|rows| {
        Table::from_rows(
            "t",
            Schema::parse("a,b,c"),
            rows.into_iter()
                .map(|(a, b, c)| vec![Value::Int(a), Value::Int(b), Value::Int(c)])
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cleansing_terminates_and_detection_confirms(table in arb_table(40)) {
        let mut sys = BigDansing::parallel(2);
        sys.add_fd("a -> b", table.schema()).unwrap();
        let res = sys.cleanse(&table, CleanseOptions::default()).unwrap();
        // terminated within the budget, and convergence is truthful
        prop_assert!(res.iterations <= 10);
        let clean = sys.detect(&res.table).unwrap().is_clean();
        prop_assert_eq!(res.converged, clean);
        // an FD with equality fixes is always repairable
        prop_assert!(clean, "FD cleansing must converge");
    }

    #[test]
    fn engine_parity_on_random_data(table in arb_table(50), workers in 1usize..5) {
        let rule: Arc<dyn Rule> = Arc::new(FdRule::parse("a -> b", table.schema()).unwrap());
        let count = |e: Engine| Executor::new(e).detect(&table, &[Arc::clone(&rule)]).unwrap().violation_count();
        let seq = count(Engine::sequential());
        prop_assert_eq!(seq, count(Engine::parallel(workers)));
        prop_assert_eq!(seq, count(Engine::disk_backed(workers)));
    }

    #[test]
    fn repaired_tables_only_change_fd_rhs_cells(table in arb_table(40)) {
        let mut sys = BigDansing::sequential();
        sys.add_fd("a -> c", table.schema()).unwrap();
        let res = sys.cleanse(&table, CleanseOptions::default()).unwrap();
        for (before, after) in table.tuples().iter().zip(res.table.tuples()) {
            prop_assert_eq!(before.value(0), after.value(0), "LHS untouched");
            prop_assert_eq!(before.value(1), after.value(1), "unrelated attr untouched");
        }
    }

    #[test]
    fn cleansing_is_idempotent(table in arb_table(30)) {
        let mut sys = BigDansing::parallel(2);
        sys.add_fd("a -> b", table.schema()).unwrap();
        let once = sys.cleanse(&table, CleanseOptions::default()).unwrap();
        let twice = sys.cleanse(&once.table, CleanseOptions::default()).unwrap();
        prop_assert_eq!(twice.cells_changed, 0, "second cleanse is a no-op");
        prop_assert_eq!(once.table.diff_cells(&twice.table), 0);
    }
}
