//! Property-based integration tests: random tables and rules through the
//! full stack.

use bigdansing::{
    apply_batch_to_table, BigDansing, CleanseOptions, DeltaBatch, IsolationOptions, RuleHealth,
};
use bigdansing_common::{Schema, Table, Value};
use bigdansing_dataflow::Engine;
use bigdansing_plan::Executor;
use bigdansing_rules::{DedupRule, FdRule, Rule, UdfRule, UnitKind};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_table(max_rows: usize) -> impl Strategy<Value = Table> {
    prop::collection::vec((0i64..6, 0i64..4, 0i64..4), 0..max_rows).prop_map(|rows| {
        Table::from_rows(
            "t",
            Schema::parse("a,b,c"),
            rows.into_iter()
                .map(|(a, b, c)| vec![Value::Int(a), Value::Int(b), Value::Int(c)])
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cleansing_terminates_and_detection_confirms(table in arb_table(40)) {
        let mut sys = BigDansing::parallel(2);
        sys.add_fd("a -> b", table.schema()).unwrap();
        let res = sys.cleanse(&table, CleanseOptions::default()).unwrap();
        // terminated within the budget, and convergence is truthful
        prop_assert!(res.iterations <= 10);
        let clean = sys.detect(&res.table).unwrap().is_clean();
        prop_assert_eq!(res.converged, clean);
        // an FD with equality fixes is always repairable
        prop_assert!(clean, "FD cleansing must converge");
    }

    #[test]
    fn engine_parity_on_random_data(table in arb_table(50), workers in 1usize..5) {
        let rule: Arc<dyn Rule> = Arc::new(FdRule::parse("a -> b", table.schema()).unwrap());
        let count = |e: Engine| Executor::new(e).detect(&table, &[Arc::clone(&rule)]).unwrap().violation_count();
        let seq = count(Engine::sequential());
        prop_assert_eq!(seq, count(Engine::parallel(workers)));
        prop_assert_eq!(seq, count(Engine::disk_backed(workers)));
    }

    #[test]
    fn repaired_tables_only_change_fd_rhs_cells(table in arb_table(40)) {
        let mut sys = BigDansing::sequential();
        sys.add_fd("a -> c", table.schema()).unwrap();
        let res = sys.cleanse(&table, CleanseOptions::default()).unwrap();
        for (before, after) in table.tuples().iter().zip(res.table.tuples()) {
            prop_assert_eq!(before.value(0), after.value(0), "LHS untouched");
            prop_assert_eq!(before.value(1), after.value(1), "unrelated attr untouched");
        }
    }

    /// Fault-isolation parity: adding an always-panicking rule to a job
    /// run with partial isolation quarantines exactly that rule and
    /// leaves the other rules' repaired output byte-identical to a run
    /// that never registered the faulty rule at all.
    #[test]
    fn quarantined_rule_never_perturbs_healthy_rules(table in arb_table(40)) {
        let healthy: Vec<Arc<dyn Rule>> = vec![
            Arc::new(FdRule::parse("a -> b", table.schema()).unwrap()),
            Arc::new(FdRule::parse("a -> c", table.schema()).unwrap()),
        ];
        let oracle_exec = Executor::new(Engine::sequential());
        let oracle = bigdansing::cleanse::cleanse_loop(
            &oracle_exec, &healthy, &table, CleanseOptions::default(),
        ).unwrap();

        let mut rules = healthy.clone();
        rules.push(Arc::new(
            UdfRule::builder("udf:faulty", |_| panic!("faulty udf"))
                .unit_kind(UnitKind::Single)
                .build(),
        ));
        let exec = Executor::new(Engine::sequential());
        let res = bigdansing::cleanse::cleanse_loop(
            &exec, &rules, &table,
            CleanseOptions { isolation: IsolationOptions::partial(), ..Default::default() },
        ).unwrap();

        prop_assert_eq!(res.converged, oracle.converged);
        prop_assert_eq!(
            res.table.diff_cells(&oracle.table), 0,
            "quarantining the faulty rule changed the healthy rules' repairs"
        );
        let quarantined: Vec<&str> = res.outcome.quarantined().map(|(n, _)| n).collect();
        prop_assert_eq!(quarantined, vec!["udf:faulty"]);
        for (name, health) in &res.outcome.rules {
            if name != "udf:faulty" {
                prop_assert_eq!(health, &RuleHealth::Completed, "{} degraded", name);
            }
        }
    }

    #[test]
    fn cleansing_is_idempotent(table in arb_table(30)) {
        let mut sys = BigDansing::parallel(2);
        sys.add_fd("a -> b", table.schema()).unwrap();
        let once = sys.cleanse(&table, CleanseOptions::default()).unwrap();
        let twice = sys.cleanse(&once.table, CleanseOptions::default()).unwrap();
        prop_assert_eq!(twice.cells_changed, 0, "second cleanse is a no-op");
        prop_assert_eq!(once.table.diff_cells(&twice.table), 0);
    }
}

// ---- incremental session parity ------------------------------------
//
// Random interleavings of insert/update/delete batches through a
// `Session` must leave exactly the state a from-scratch `cleanse` of
// the materialized table would: same repaired rows, same violation
// store. Ops are generated abstractly (fresh values plus selectors into
// the live id set) so every batch is valid by construction.

#[derive(Debug, Clone)]
enum OpSpec {
    Insert(i64, i64, i64),
    Update(usize, i64, i64, i64),
    Delete(usize),
    /// Delete a live id and reinsert it within the same batch — the id
    /// keeps its identity but moves to the end of the table, exercising
    /// the session's index maintenance under in-batch seq reassignment.
    Reinsert(usize, i64, i64, i64),
}

fn arb_interleavings() -> impl Strategy<Value = Vec<Vec<OpSpec>>> {
    let op = prop_oneof![
        (0i64..6, 0i64..4, 0i64..4).prop_map(|(a, b, c)| OpSpec::Insert(a, b, c)),
        (any::<usize>(), 0i64..6, 0i64..4, 0i64..4)
            .prop_map(|(s, a, b, c)| OpSpec::Update(s, a, b, c)),
        any::<usize>().prop_map(OpSpec::Delete),
        (any::<usize>(), 0i64..6, 0i64..4, 0i64..4)
            .prop_map(|(s, a, b, c)| OpSpec::Reinsert(s, a, b, c)),
    ];
    prop::collection::vec(prop::collection::vec(op, 0..6), 1..4)
}

/// Column `a` becomes a short string under `strings` so similarity
/// rules have something to compare ("na3" vs "na5" ≈ 0.67 similar).
fn spec_values(a: i64, b: i64, c: i64, strings: bool) -> Vec<Value> {
    let first = if strings {
        Value::str(format!("na{a}"))
    } else {
        Value::Int(a)
    };
    vec![first, Value::Int(b), Value::Int(c)]
}

fn spec_table(rows: Vec<(i64, i64, i64)>, strings: bool) -> Table {
    Table::from_rows(
        "t",
        Schema::parse("a,b,c"),
        rows.into_iter()
            .map(|(a, b, c)| spec_values(a, b, c, strings))
            .collect(),
    )
}

fn resolve_batch(
    specs: &[OpSpec],
    live: &mut Vec<u64>,
    next: &mut u64,
    strings: bool,
) -> DeltaBatch {
    let mut batch = DeltaBatch::new();
    for spec in specs {
        match spec {
            OpSpec::Insert(a, b, c) => {
                let id = *next;
                *next += 1;
                live.push(id);
                batch = batch.insert(id, spec_values(*a, *b, *c, strings));
            }
            OpSpec::Update(sel, a, b, c) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[sel % live.len()];
                batch = batch.update(id, spec_values(*a, *b, *c, strings));
            }
            OpSpec::Delete(sel) => {
                if live.is_empty() {
                    continue;
                }
                let idx = sel % live.len();
                batch = batch.delete(live.remove(idx));
            }
            OpSpec::Reinsert(sel, a, b, c) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[sel % live.len()];
                batch = batch
                    .delete(id)
                    .insert(id, spec_values(*a, *b, *c, strings));
            }
        }
    }
    batch
}

fn canon_detected(detected: &[(bigdansing::Violation, Vec<bigdansing::Fix>)]) -> Vec<String> {
    let mut out: Vec<String> = detected
        .iter()
        .map(|(v, fixes)| format!("{v:?} | {fixes:?}"))
        .collect();
    out.sort();
    out
}

fn assert_session_parity(
    sys: &BigDansing,
    base: Table,
    interleavings: Vec<Vec<OpSpec>>,
    strings: bool,
) {
    let mut session = sys.open_session(&base, CleanseOptions::default()).unwrap();
    let mut live: Vec<u64> = base.tuples().iter().map(|t| t.id()).collect();
    let mut next = live.iter().copied().max().map_or(0, |m| m + 1);
    let mut current = base;
    for specs in interleavings {
        let batch = resolve_batch(&specs, &mut live, &mut next, strings);
        current = apply_batch_to_table(&current, &batch).unwrap();
        sys.apply_delta(&mut session, batch).unwrap();
        let oracle = sys.cleanse(&current, CleanseOptions::default()).unwrap();
        let rows =
            |t: &Table| -> Vec<String> { t.tuples().iter().map(|t| format!("{t:?}")).collect() };
        assert_eq!(
            rows(session.table()),
            rows(&oracle.table),
            "repaired tables diverged"
        );
        let residue = sys.detect(&oracle.table).unwrap();
        assert_eq!(
            canon_detected(&session.detected()),
            canon_detected(&residue.detected),
            "violation stores diverged"
        );
        current = oracle.table;
    }
}

/// Deterministic instance of the property, so the parity harness runs
/// even where the proptest bodies don't (e.g. type-check-only stubs).
#[test]
fn session_parity_smoke_interleaving() {
    let base = spec_table(vec![(1, 1, 1), (1, 2, 3), (2, 0, 0)], false);
    let mut sys = BigDansing::parallel(2);
    sys.add_fd("a -> b", base.schema()).unwrap();
    let ops = vec![
        vec![OpSpec::Insert(1, 3, 2), OpSpec::Delete(0)],
        vec![
            OpSpec::Update(1, 2, 1, 1),
            OpSpec::Delete(2),
            OpSpec::Insert(1, 0, 0),
        ],
        // same-batch delete+reinsert of a live id, then another delta
        // into the same `a` block
        vec![OpSpec::Reinsert(0, 1, 3, 3)],
        vec![OpSpec::Insert(1, 1, 1)],
    ];
    assert_session_parity(&sys, base, ops, false);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fd_session_parity_on_random_interleavings(
        rows in prop::collection::vec((0i64..6, 0i64..4, 0i64..4), 0..20),
        ops in arb_interleavings(),
    ) {
        let base = spec_table(rows, false);
        let mut sys = BigDansing::parallel(2);
        sys.add_fd("a -> b", base.schema()).unwrap();
        assert_session_parity(&sys, base, ops, false);
    }

    #[test]
    fn dc_session_parity_on_random_interleavings(
        rows in prop::collection::vec((0i64..6, 0i64..4, 0i64..4), 0..16),
        ops in arb_interleavings(),
    ) {
        let base = spec_table(rows, false);
        let mut sys = BigDansing::parallel(2);
        sys.add_dc("t1.b > t2.b & t1.c < t2.c", base.schema()).unwrap();
        assert_session_parity(&sys, base, ops, false);
    }

    #[test]
    fn dedup_session_parity_on_random_interleavings(
        rows in prop::collection::vec((0i64..6, 0i64..4, 0i64..4), 0..16),
        ops in arb_interleavings(),
    ) {
        let base = spec_table(rows, true);
        let mut sys = BigDansing::parallel(2);
        sys.add_rule(Arc::new(DedupRule::new("udf:dedup", 0, 0.6)));
        assert_session_parity(&sys, base, ops, true);
    }
}

// ---------------------------------------------------------------------
// Durability frame codec: corruption never panics, never decodes.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flip one byte anywhere in an encoded frame: decoding must return
    /// a typed error (the CRC, magic, version, or length check fires) —
    /// never panic, and never silently hand back the mutated payload as
    /// if it were intact. A flip inside the payload is the one place the
    /// bytes themselves don't self-describe; there the CRC must catch it.
    #[test]
    fn flipped_frame_byte_is_rejected(
        kind in 0u8..8,
        payload in prop::collection::vec(any::<u8>(), 0..256),
        pos_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bad = bigdansing_common::codec::encode_frame(kind, &payload);
        let pos = pos_seed % bad.len();
        bad[pos] ^= 1 << bit; // a single-bit flip always changes the frame
        let mut cursor = &bad[..];
        match bigdansing_common::codec::decode_frame(&mut cursor) {
            Ok(_) => prop_assert!(false, "corrupt frame decoded (flip at byte {pos})"),
            Err(bigdansing::Error::Parse(_)) | Err(bigdansing::Error::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Truncate an encoded frame at any interior offset: decoding must
    /// report a typed truncation error, never panic on a short slice.
    /// This is exactly the torn-tail shape the WAL sees after a crash
    /// mid-append.
    #[test]
    fn truncated_frame_is_rejected(
        kind in 0u8..8,
        payload in prop::collection::vec(any::<u8>(), 0..256),
        cut_seed in any::<usize>(),
    ) {
        let frame = bigdansing_common::codec::encode_frame(kind, &payload);
        let cut = cut_seed % frame.len(); // 0..len: always strictly short
        let mut cursor = &frame[..cut];
        match bigdansing_common::codec::decode_frame(&mut cursor) {
            Ok(_) => prop_assert!(false, "truncated frame decoded (cut at byte {cut})"),
            Err(bigdansing::Error::Parse(_)) | Err(bigdansing::Error::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// Intact frames always round-trip — the complement that pins the
    /// two rejection properties against a vacuously-failing decoder.
    #[test]
    fn intact_frame_roundtrips(
        kind in 0u8..8,
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let frame = bigdansing_common::codec::encode_frame(kind, &payload);
        let mut cursor = &frame[..];
        let (k, p) = bigdansing_common::codec::decode_frame(&mut cursor).unwrap();
        prop_assert_eq!(k, kind);
        prop_assert_eq!(p, payload);
        prop_assert!(cursor.is_empty());
    }
}
