//! End-to-end tests of the continuous cleansing service: streaming
//! parity with the offline oracle, micro-batching, windowed retraction,
//! tenant isolation under partial-mode faults, quarantined ingest, and
//! durable restart.

use bigdansing::{BigDansing, CleanseOptions, IsolationOptions, Rule};
use bigdansing_common::{csv, Schema, Table};
use bigdansing_incremental::{DeltaBatch, WindowSpec};
use bigdansing_rules::{FdRule, UdfRule, UnitKind};
use bigdansing_serve::client::Client;
use bigdansing_serve::ingest::Json;
use bigdansing_serve::{ServeOptions, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::parse("zipcode,city")
}

fn fd_rules(schema: &Schema) -> Vec<Arc<dyn Rule>> {
    vec![Arc::new(FdRule::parse("zipcode -> city", schema).unwrap())]
}

fn base_opts() -> ServeOptions {
    let schema = schema();
    let mut opts = ServeOptions::new(schema.clone());
    opts.rules = fd_rules(&schema);
    opts.shards = 1;
    opts.http_threads = 2;
    opts
}

/// Feed the same delta bodies through a solo sequential session — the
/// offline oracle the streamed table must match byte for byte.
fn oracle_table(rules: Vec<Arc<dyn Rule>>, copts: CleanseOptions, bodies: &[&str]) -> String {
    let schema = schema();
    let mut sys = BigDansing::sequential();
    for r in rules {
        sys.add_rule(r);
    }
    let empty = Table::from_rows("t", schema.clone(), Vec::new());
    let mut session = sys.open_session(&empty, copts).unwrap();
    for body in bodies {
        let batch = DeltaBatch::parse_str(body, &schema).unwrap();
        sys.apply_delta(&mut session, batch).unwrap();
    }
    csv::to_string(session.table())
}

fn json_u64(body: &str, key: &str) -> u64 {
    let v = Json::parse(body).unwrap_or_else(|e| panic!("bad json {body:?}: {e}"));
    v.as_object()
        .and_then(|o| o.get(key).and_then(Json::as_u64))
        .unwrap_or_else(|| panic!("no numeric {key} in {body}"))
}

#[test]
fn streamed_table_matches_offline_oracle() {
    let mut server = Server::start("127.0.0.1:0", base_opts()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let bodies = [
        "insert,1,90210,LA\ninsert,2,90210,SF\ninsert,3,10001,NY\n",
        "insert,4,60601,CH\nupdate,3,10001,BK\n",
        "delete,2\ninsert,5,90210,LA\n",
    ];
    for body in &bodies {
        let r = c.post("/tenant/acme/records?wait=1", body).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    let got = c.get("/tenant/acme/table").unwrap();
    assert_eq!(got.status, 200);
    let want = oracle_table(fd_rules(&schema()), CleanseOptions::default(), &bodies);
    assert_eq!(got.body, want, "streamed table must equal offline cleanse");

    let report = c.get("/tenant/acme/report").unwrap();
    assert_eq!(report.status, 200);
    assert_eq!(json_u64(&report.body, "records_in"), 7);
    assert_eq!(json_u64(&report.body, "violations"), 0);
    server.shutdown();
}

#[test]
fn micro_batcher_flushes_on_size_and_latency() {
    let mut opts = base_opts();
    opts.max_batch = 4;
    opts.max_latency = Duration::from_secs(30); // size must trigger first
    let mut server = Server::start("127.0.0.1:0", opts).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let r = c
        .post(
            "/tenant/t1/records",
            "insert,1,90210,LA\ninsert,2,10001,NY\n",
        )
        .unwrap();
    assert_eq!(r.status, 202, "{}", r.body);
    let r = c
        .post(
            "/tenant/t1/records",
            "insert,3,60601,CH\ninsert,4,94105,SF\n",
        )
        .unwrap();
    assert_eq!(r.status, 202);

    // the 4th op crossed max_batch: one coalesced flush, no waiting
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = c.get("/tenant/t1/report").unwrap();
        if json_u64(&report.body, "batches_applied") == 1
            && json_u64(&report.body, "pending_ops") == 0
        {
            assert_eq!(json_u64(&report.body, "table_rows"), 4);
            break;
        }
        assert!(Instant::now() < deadline, "size flush never happened");
        std::thread::sleep(Duration::from_millis(10));
    }

    // latency path: one lone op must flush within max_latency
    let mut opts = base_opts();
    opts.max_batch = 1000;
    opts.max_latency = Duration::from_millis(30);
    let mut server2 = Server::start("127.0.0.1:0", opts).unwrap();
    let mut c2 = Client::connect(server2.addr()).unwrap();
    let r = c2
        .post("/tenant/t2/records", "insert,1,90210,LA\n")
        .unwrap();
    assert_eq!(r.status, 202);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let report = c2.get("/tenant/t2/report").unwrap();
        if json_u64(&report.body, "batches_applied") == 1 {
            break;
        }
        assert!(Instant::now() < deadline, "latency flush never happened");
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    server2.shutdown();
}

#[test]
fn malformed_records_quarantine_instead_of_failing() {
    let mut server = Server::start("127.0.0.1:0", base_opts()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let body = "insert,1,90210,LA\nnonsense line\ninsert,oops,1,2\ninsert,2,10001,NY\n";
    let r = c.post("/tenant/acme/records?wait=1", body).unwrap();
    assert_eq!(r.status, 200, "malformed lines must not fail the request");
    assert_eq!(json_u64(&r.body, "accepted"), 2);
    assert_eq!(json_u64(&r.body, "quarantined"), 2);
    assert_eq!(json_u64(&r.body, "table_rows"), 2);

    let report = c.get("/tenant/acme/report").unwrap();
    assert_eq!(json_u64(&report.body, "records_quarantined"), 2);
    assert!(report.body.contains("\"line\": 2"), "{}", report.body);

    // the metric surfaces on the stats endpoint too
    let stats = c.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    assert_eq!(json_u64(&stats.body, "records_quarantined"), 2);

    // JSONL ingest takes the same lenient path
    let jsonl = "{\"op\":\"insert\",\"id\":9,\"values\":[\"94105\",\"SF\"]}\n{\"bad\":true}\n";
    let r = c
        .request(
            "POST",
            "/tenant/acme/records?wait=1",
            "application/x-ndjson",
            jsonl,
        )
        .unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(json_u64(&r.body, "accepted"), 1);
    assert_eq!(json_u64(&r.body, "quarantined"), 1);
    server.shutdown();
}

#[test]
fn windowed_retraction_matches_window_aware_oracle() {
    let spec = WindowSpec::tumbling(4).unwrap();
    let mut opts = base_opts();
    opts.window = Some(spec);
    let mut server = Server::start("127.0.0.1:0", opts).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    // ten clean single-op batches: event times 0..10
    let bodies: Vec<String> = (0..10)
        .map(|i| format!("insert,{i},{},C{i}\n", 10000 + i))
        .collect();
    let mut expired_total = 0;
    for body in &bodies {
        let r = c.post("/tenant/win/records?wait=1", body).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        expired_total += json_u64(&r.body, "tuples_expired");
    }

    // hand-computed window geometry: after ts 0..=9 (watermark 9), a
    // tuple is live iff its tumbling window [4⌊ts/4⌋, 4⌊ts/4⌋+4) is
    // still open — exactly ts 8 and 9
    let report = c.get("/tenant/win/report").unwrap();
    assert_eq!(json_u64(&report.body, "watermark"), 9);
    assert_eq!(json_u64(&report.body, "window_live"), 2);
    assert_eq!(expired_total, 8);

    // and the full session-level oracle agrees byte for byte
    let got = c.get("/tenant/win/table").unwrap();
    let copts = CleanseOptions {
        window: Some(spec),
        ..Default::default()
    };
    let refs: Vec<&str> = bodies.iter().map(String::as_str).collect();
    let want = oracle_table(fd_rules(&schema()), copts, &refs);
    assert_eq!(got.body, want);
    server.shutdown();
}

/// A rule that panics on any tuple whose city is "BOOM" — only tenant
/// `alpha` ever streams that value.
fn boom_rule() -> Arc<dyn Rule> {
    Arc::new(
        UdfRule::builder("udf:boom", |unit| {
            for t in unit.tuples() {
                if t.value(1).to_string().contains("BOOM") {
                    panic!("boom tuple");
                }
            }
            Vec::new()
        })
        .unit_kind(UnitKind::Single)
        .build(),
    )
}

#[test]
fn tenant_fault_is_isolated_from_cotenant_stream() {
    let schema = schema();
    let mut rules = fd_rules(&schema);
    rules.push(boom_rule());

    let mut opts = base_opts();
    opts.rules = rules.clone();
    opts.shards = 1; // force both tenants onto the same shard
    opts.cleanse.isolation = IsolationOptions::partial();
    let mut server = Server::start("127.0.0.1:0", opts).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let beta_bodies = [
        "insert,1,90210,LA\ninsert,2,90210,SF\n",
        "insert,3,10001,NY\nupdate,2,90210,LA\n",
        "insert,4,60601,CH\ndelete,1\n",
    ];
    // interleave: alpha's poisonous stream between beta's batches
    for (i, body) in beta_bodies.iter().enumerate() {
        let r = c
            .post(
                "/tenant/alpha/records?wait=1",
                &format!("insert,{i},50000,BOOM\n"),
            )
            .unwrap();
        assert_eq!(r.status, 200, "partial mode keeps alpha alive: {}", r.body);
        let r = c.post("/tenant/beta/records?wait=1", body).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }

    // alpha: the faulty rule is quarantined, the session is not poisoned
    let report = c.get("/tenant/alpha/report").unwrap();
    assert!(report.body.contains("udf:boom"), "{}", report.body);
    assert!(
        report.body.contains("\"poisoned\": false"),
        "{}",
        report.body
    );

    // beta's stream is byte-identical to a solo run without alpha
    let got = c.get("/tenant/beta/table").unwrap();
    let copts = CleanseOptions {
        isolation: IsolationOptions::partial(),
        ..Default::default()
    };
    let refs: Vec<&str> = beta_bodies.to_vec();
    let want = oracle_table(rules, copts, &refs);
    assert_eq!(got.body, want, "co-tenant fault leaked into beta's stream");
    server.shutdown();
}

#[test]
fn durable_tenants_resume_across_restarts() {
    let root = std::env::temp_dir().join(format!("bd-serve-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let mk_opts = || {
        let mut opts = base_opts();
        opts.durable_root = Some(root.clone());
        opts.snapshot_every = 2;
        opts
    };
    let mut server = Server::start("127.0.0.1:0", mk_opts()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let first = [
        "insert,1,90210,LA\ninsert,2,10001,NY\n",
        "insert,3,90210,SF\n",
    ];
    for body in &first {
        assert_eq!(
            c.post("/tenant/acme/records?wait=1", body).unwrap().status,
            200
        );
    }
    // graceful stop through the endpoint
    assert_eq!(c.post("/shutdown", "").unwrap().status, 200);
    server.wait();

    let mut server = Server::start("127.0.0.1:0", mk_opts()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let second = ["insert,4,60601,CH\nupdate,2,10001,BK\n"];
    for body in &second {
        assert_eq!(
            c.post("/tenant/acme/records?wait=1", body).unwrap().status,
            200
        );
    }
    let got = c.get("/tenant/acme/table").unwrap();
    let all: Vec<&str> = first.iter().chain(second.iter()).copied().collect();
    let want = oracle_table(fd_rules(&schema()), CleanseOptions::default(), &all);
    assert_eq!(got.body, want, "restarted service lost durable state");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tenants_spread_across_shards_and_bad_ids_rejected() {
    let mut opts = base_opts();
    opts.shards = 4;
    let mut server = Server::start("127.0.0.1:0", opts).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    for t in ["a", "b", "c", "d", "e", "f"] {
        let r = c
            .post(
                &format!("/tenant/{t}/records?wait=1"),
                "insert,1,90210,LA\n",
            )
            .unwrap();
        assert_eq!(r.status, 200);
    }
    // distinct shard indices must appear in the reports
    let mut shards_seen = std::collections::BTreeSet::new();
    for t in ["a", "b", "c", "d", "e", "f"] {
        let report = c.get(&format!("/tenant/{t}/report")).unwrap();
        shards_seen.insert(json_u64(&report.body, "shard"));
    }
    assert!(shards_seen.len() > 1, "all tenants on one shard");

    assert_eq!(c.get("/tenant/no%2Fpe/report").unwrap().status, 400);
    assert_eq!(c.get("/tenant/ghost/report").unwrap().status, 404);
    assert_eq!(c.get("/nope").unwrap().status, 404);
    assert_eq!(c.get("/healthz").unwrap().status, 200);
    server.shutdown();
}
