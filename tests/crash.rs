//! Crash-recovery harness for durable incremental sessions.
//!
//! Each case forks the CLI in its hidden `crash-apply` mode with
//! `BIGDANSING_CRASH_AT=<point>[:N]` set, so the child process aborts
//! itself at a seeded durability crash point — mid-WAL-append (torn
//! frame on disk), after the WAL fsync but before any in-memory
//! mutation, or mid-snapshot-rename (complete temp file, old snapshot
//! still visible). The parent then recovers the durable directory
//! through the library, applies whatever batches the crash swallowed,
//! and asserts the result is identical to an uninterrupted sequential
//! session over the same inputs.

use bigdansing::{
    BigDansing, CleanseOptions, DeltaBatch, DurabilityOptions, RecoverStats, Session,
};
use bigdansing_common::Schema;
use std::path::PathBuf;
use std::process::Command;

const BASE_CSV: &str = "zipcode,city\n1,LA\n2,NY\n";
const DELTA_CSVS: [&str; 4] = [
    "op,id,zipcode,city\ninsert,10,1,SF\n",
    "op,id,zipcode,city\ninsert,11,3,CH\nupdate,10,2,NY\n",
    "op,id,zipcode,city\ndelete,1\n",
    "op,id,zipcode,city\ninsert,12,3,AU\n",
];
const FD: &str = "zipcode -> city";

/// Locate the CLI binary built alongside the test executable, falling
/// back to asking cargo for a build when it is missing (e.g. `cargo
/// test` without a prior workspace build).
fn cli_binary() -> PathBuf {
    let mut dir = std::env::current_exe().expect("test binary path");
    dir.pop(); // the test executable
    if dir.ends_with("deps") {
        dir.pop(); // target/<profile>/
    }
    let exe = format!("bigdansing-cli{}", std::env::consts::EXE_SUFFIX);
    let debug = dir.join(&exe);
    if debug.exists() {
        return debug;
    }
    // A release-only build leaves the binary under target/release.
    if let Some(target) = dir.parent() {
        let release = target.join("release").join(&exe);
        if release.exists() {
            return release;
        }
    }
    let status = Command::new(env!("CARGO"))
        .args(["build", "-p", "bigdansing-cli"])
        .status()
        .expect("spawn cargo build");
    assert!(status.success(), "cargo build -p bigdansing-cli failed");
    assert!(
        debug.exists(),
        "{} still missing after build",
        debug.display()
    );
    debug
}

struct Scenario {
    root: PathBuf,
    base: PathBuf,
    deltas: Vec<PathBuf>,
    durable: PathBuf,
}

impl Scenario {
    fn new(tag: &str) -> Scenario {
        let root = std::env::temp_dir().join(format!("bd-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let base = root.join("base.csv");
        std::fs::write(&base, BASE_CSV).unwrap();
        let deltas: Vec<PathBuf> = DELTA_CSVS
            .iter()
            .enumerate()
            .map(|(i, text)| {
                let p = root.join(format!("d{}.csv", i + 1));
                std::fs::write(&p, text).unwrap();
                p
            })
            .collect();
        let durable = root.join("session");
        Scenario {
            root,
            base,
            deltas,
            durable,
        }
    }

    /// Run the child with a seeded crash point; it must die abnormally.
    fn crash_child(&self, crash_at: &str) {
        let out = Command::new(cli_binary())
            .arg("crash-apply")
            .arg(&self.base)
            .args(&self.deltas)
            .args(["--fd", FD])
            .arg("--durable-dir")
            .arg(&self.durable)
            .args(["--snapshot-every", "2", "--workers", "1"])
            .env("BIGDANSING_CRASH_AT", crash_at)
            .output()
            .expect("spawn crash-apply child");
        assert!(
            !out.status.success(),
            "child with BIGDANSING_CRASH_AT={crash_at} exited cleanly:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            self.durable.join("snapshot.bin").exists(),
            "baseline snapshot must exist whatever the kill point"
        );
    }

    fn system() -> BigDansing {
        let mut sys = BigDansing::sequential();
        sys.add_fd(FD, &Schema::parse("zipcode,city")).unwrap();
        sys
    }

    /// Recover the durable directory and finish applying the batches
    /// the crash swallowed (WAL sequence numbers are 1-based and map
    /// directly onto the delta file order).
    fn recover_and_finish(&self) -> (Session, RecoverStats) {
        let sys = Self::system();
        let (mut session, stats) = sys
            .recover_session(
                CleanseOptions::default(),
                DurabilityOptions::new(&self.durable).snapshot_every(2),
            )
            .expect("recovery");
        let schema = Schema::parse("zipcode,city");
        for path in &self.deltas[stats.last_seq as usize..] {
            let batch = DeltaBatch::read_file(path, &schema).unwrap();
            sys.apply_delta(&mut session, batch)
                .expect("catch-up apply");
        }
        (session, stats)
    }

    /// The oracle: an uninterrupted sequential session over the same
    /// base and batches.
    fn oracle(&self) -> Session {
        let sys = Self::system();
        let table = bigdansing::csv::read_file(&self.base, true, None).unwrap();
        let mut session = sys.open_session(&table, CleanseOptions::default()).unwrap();
        let schema = Schema::parse("zipcode,city");
        for path in &self.deltas {
            let batch = DeltaBatch::read_file(path, &schema).unwrap();
            sys.apply_delta(&mut session, batch).unwrap();
        }
        session
    }

    fn cleanup(self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn assert_parity(recovered: &Session, oracle: &Session, context: &str) {
    assert_eq!(
        recovered.table().tuples(),
        oracle.table().tuples(),
        "{context}: recovered table diverges from the uninterrupted run"
    );
    assert_eq!(
        recovered.detected(),
        oracle.detected(),
        "{context}: recovered violation store diverges"
    );
}

fn run_case(tag: &str, crash_at: &str, min_replayed: u64, max_last_seq: u64) {
    let scenario = Scenario::new(tag);
    scenario.crash_child(crash_at);
    let (recovered, stats) = scenario.recover_and_finish();
    assert!(
        stats.replayed >= min_replayed,
        "{crash_at}: expected >= {min_replayed} replayed, got {stats:?}"
    );
    assert!(
        stats.last_seq <= max_last_seq,
        "{crash_at}: crash point leaked later batches: {stats:?}"
    );
    let oracle = scenario.oracle();
    assert_parity(&recovered, &oracle, crash_at);
    scenario.cleanup();
}

/// Kill mid-append on batch 2: a torn half-frame tails the WAL. Only
/// batch 1 is recoverable; recovery truncates the tear and the parent
/// re-applies batches 2–4.
#[test]
fn crash_mid_wal_append_recovers_to_parity() {
    run_case("pre-sync", "wal-pre-sync:2", 0, 1);
}

/// Kill after batch 2's WAL fsync but before the in-memory apply: the
/// record is durable, so recovery replays both batches 1 and 2.
#[test]
fn crash_after_wal_sync_recovers_to_parity() {
    run_case("post-sync", "wal-post-sync:2", 2, 2);
}

/// Kill between the snapshot temp-file fsync and its rename (the
/// second snapshot — the first is the baseline at open): the old
/// snapshot must still be intact, the orphan temp swept, and the WAL
/// replay must reach the same state the snapshot would have captured.
#[test]
fn crash_mid_snapshot_rename_recovers_to_parity() {
    run_case("snap-rename", "snapshot-pre-rename:2", 2, 2);
}

/// No crash at all: the child applies everything, the parent recovery
/// replays nothing new and still matches the oracle — the degenerate
/// case that pins the harness itself.
#[test]
fn clean_run_recovers_to_parity() {
    let scenario = Scenario::new("clean");
    let out = Command::new(cli_binary())
        .arg("crash-apply")
        .arg(&scenario.base)
        .args(&scenario.deltas)
        .args(["--fd", FD])
        .arg("--durable-dir")
        .arg(&scenario.durable)
        .args(["--snapshot-every", "2", "--workers", "1"])
        .output()
        .expect("spawn clean child");
    assert!(
        out.status.success(),
        "clean run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (recovered, stats) = scenario.recover_and_finish();
    assert_eq!(stats.last_seq, 4);
    assert_eq!(stats.replayed, 0, "snapshot at seq 4 covers the whole WAL");
    let oracle = scenario.oracle();
    assert_parity(&recovered, &oracle, "clean");
    scenario.cleanup();
}

/// A session poisoned by a faulty rule mid-stream — then recovered —
/// must resume with its violation-window state (watermark, event
/// times) intact: the next arrival closes exactly the windows it would
/// have closed had the fault never happened.
#[test]
fn poisoned_windowed_session_recovers_with_window_state_intact() {
    use bigdansing::{Rule, UdfRule, UnitKind, WindowSpec};
    use bigdansing_common::{csv, Table, Value};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    static ARMED: AtomicBool = AtomicBool::new(false);

    let root = std::env::temp_dir().join(format!("bd-crash-window-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let schema = Schema::parse("zipcode,city");
    let system = |schema: &Schema| {
        let mut sys = BigDansing::sequential();
        sys.add_fd(FD, schema).unwrap();
        sys.add_rule(Arc::new(
            UdfRule::builder("udf:armed", |_| {
                if ARMED.load(Ordering::SeqCst) {
                    panic!("armed fault");
                }
                Vec::new()
            })
            .unit_kind(UnitKind::Single)
            .build(),
        ) as Arc<dyn Rule>);
        sys
    };
    let copts = || CleanseOptions {
        window: Some(WindowSpec::tumbling(3).unwrap()),
        ..CleanseOptions::default()
    };
    let base = Table::from_rows(
        "t",
        schema.clone(),
        vec![
            vec![Value::Int(1), Value::str("LA")],
            vec![Value::Int(2), Value::str("NY")],
        ],
    );
    let batch1 = || DeltaBatch::new().insert(10, vec![Value::Int(3), Value::str("CH")]);
    let batch2 = || DeltaBatch::new().insert(11, vec![Value::Int(4), Value::str("SE")]);

    let sys = system(&schema);
    let mut s = sys
        .open_durable_session(
            &base,
            copts(),
            DurabilityOptions::new(&root).snapshot_every(10),
        )
        .unwrap();
    sys.apply_delta(&mut s, batch1()).unwrap();
    assert_eq!(s.watermark(), Some(2), "base ts 0,1 + one arrival");

    // arm the fault: the apply is WAL-logged, then fails and poisons
    ARMED.store(true, Ordering::SeqCst);
    assert!(sys.apply_delta(&mut s, batch2()).is_err());
    assert!(s.is_poisoned());
    drop(s);
    ARMED.store(false, Ordering::SeqCst);

    let (recovered, stats) = sys
        .recover_session(copts(), DurabilityOptions::new(&root))
        .unwrap();
    assert!(
        stats.replayed >= 1,
        "the poisoned batch replays from the WAL"
    );
    // tuple 11 takes event time 3, closing tumbling window [0,3):
    // tuples with ts 0,1,2 retire — only tuple 11 stays live
    assert_eq!(recovered.watermark(), Some(3));
    assert_eq!(recovered.window_live(), Some(1));
    assert_eq!(recovered.table().len(), 1);

    // byte-parity with an uninterrupted windowed session
    let oracle_sys = system(&schema);
    let mut oracle = oracle_sys.open_session(&base, copts()).unwrap();
    oracle_sys.apply_delta(&mut oracle, batch1()).unwrap();
    oracle_sys.apply_delta(&mut oracle, batch2()).unwrap();
    assert_eq!(
        csv::to_string(recovered.table()),
        csv::to_string(oracle.table())
    );
    assert_eq!(recovered.violation_count(), oracle.violation_count());
    let _ = std::fs::remove_dir_all(&root);
}
